//! The Mellor-Crummey & Scott (MCS) queue lock.
//!
//! YASMIN's lock-free locking option "relies on lock-free algorithms from
//! [Mellor-Crummey & Scott 1991]" because queue locks spin on a *local*
//! flag — each waiter has bounded, analysable waiting behaviour and the
//! cache traffic of a global spin flag is avoided (§3.5).
//!
//! Queue nodes live in thread-local storage (a small per-thread stack of
//! nodes supports nested acquisition of distinct MCS locks). A node is
//! only ever touched by other threads between `lock()` and `unlock()` of
//! its owning thread, so thread-local lifetime is sufficient.

use std::cell::{Cell, UnsafeCell};
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};

/// Maximum nesting depth of MCS locks held simultaneously by one thread.
const MAX_NESTING: usize = 8;

#[derive(Debug)]
struct McsNode {
    locked: AtomicBool,
    next: AtomicPtr<McsNode>,
}

impl McsNode {
    const fn new() -> Self {
        McsNode {
            locked: AtomicBool::new(false),
            next: AtomicPtr::new(ptr::null_mut()),
        }
    }
}

thread_local! {
    static NODES: [McsNode; MAX_NESTING] = const { [
        McsNode::new(), McsNode::new(), McsNode::new(), McsNode::new(),
        McsNode::new(), McsNode::new(), McsNode::new(), McsNode::new(),
    ] };
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// An MCS queue spinlock protecting a value of type `T`.
///
/// # Examples
///
/// ```
/// use yasmin_sync::mcs::McsLock;
///
/// let lock = McsLock::new(41);
/// *lock.lock() += 1;
/// assert_eq!(*lock.lock(), 42);
/// ```
#[derive(Debug)]
pub struct McsLock<T> {
    tail: AtomicPtr<McsNode>,
    data: UnsafeCell<T>,
}

// SAFETY: the MCS protocol guarantees mutual exclusion.
unsafe impl<T: Send> Sync for McsLock<T> {}
unsafe impl<T: Send> Send for McsLock<T> {}

impl<T> McsLock<T> {
    /// Creates a lock around `value`.
    #[must_use]
    pub const fn new(value: T) -> Self {
        McsLock {
            tail: AtomicPtr::new(ptr::null_mut()),
            data: UnsafeCell::new(value),
        }
    }

    /// Acquires the lock, spinning on a thread-local flag.
    ///
    /// # Panics
    ///
    /// Panics if one thread nests more than 8 simultaneous MCS
    /// acquisitions.
    pub fn lock(&self) -> McsGuard<'_, T> {
        let node = Self::claim_node();
        // SAFETY: `node` points into this thread's TLS node array; the slot
        // was just claimed via the DEPTH counter, so no other acquisition
        // uses it until the matching `drop` releases it.
        unsafe {
            (*node).locked.store(true, Ordering::Relaxed);
            (*node).next.store(ptr::null_mut(), Ordering::Relaxed);
        }
        let prev = self.tail.swap(node, Ordering::AcqRel);
        if !prev.is_null() {
            // SAFETY: `prev` was the queue tail; its owner is inside
            // lock()..unlock() (it cannot release before publishing us as
            // its successor), so the node is alive.
            unsafe {
                (*prev).next.store(node, Ordering::Release);
                let mut backoff = crate::wait::Backoff::new();
                while (*node).locked.load(Ordering::Acquire) {
                    backoff.snooze();
                }
            }
        }
        McsGuard { lock: self, node }
    }

    /// Tries to acquire the lock without waiting.
    pub fn try_lock(&self) -> Option<McsGuard<'_, T>> {
        let node = Self::claim_node();
        // SAFETY: freshly claimed TLS node, see `lock`.
        unsafe {
            (*node).locked.store(true, Ordering::Relaxed);
            (*node).next.store(ptr::null_mut(), Ordering::Relaxed);
        }
        if self
            .tail
            .compare_exchange(ptr::null_mut(), node, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            Some(McsGuard { lock: self, node })
        } else {
            Self::release_node();
            None
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }

    fn claim_node() -> *mut McsNode {
        let depth = DEPTH.with(|d| {
            let v = d.get();
            assert!(v < MAX_NESTING, "MCS nesting deeper than {MAX_NESTING}");
            d.set(v + 1);
            v
        });
        NODES.with(|nodes| &nodes[depth] as *const McsNode as *mut McsNode)
    }

    fn release_node() {
        DEPTH.with(|d| d.set(d.get() - 1));
    }
}

/// RAII guard for [`McsLock`]; releases on drop.
#[derive(Debug)]
pub struct McsGuard<'a, T> {
    lock: &'a McsLock<T>,
    node: *mut McsNode,
}

impl<T> std::ops::Deref for McsGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard proves exclusive ownership of the lock.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> std::ops::DerefMut for McsGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the guard proves exclusive ownership of the lock.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for McsGuard<'_, T> {
    fn drop(&mut self) {
        let node = self.node;
        // SAFETY: `node` is this guard's TLS node, alive until we return.
        unsafe {
            let mut next = (*node).next.load(Ordering::Acquire);
            if next.is_null() {
                // No known successor: try to swing the tail back to null.
                if self
                    .lock
                    .tail
                    .compare_exchange(node, ptr::null_mut(), Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
                {
                    McsLock::<T>::release_node();
                    return;
                }
                // A successor is in the middle of enqueueing; wait for it.
                let mut backoff = crate::wait::Backoff::new();
                loop {
                    next = (*node).next.load(Ordering::Acquire);
                    if !next.is_null() {
                        break;
                    }
                    backoff.snooze();
                }
            }
            (*next).locked.store(false, Ordering::Release);
        }
        McsLock::<T>::release_node();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutual_exclusion_under_contention() {
        let lock = Arc::new(McsLock::new(0u64));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        *lock.lock() += 1;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*lock.lock(), 80_000);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let lock = McsLock::new(());
        let g = lock.lock();
        assert!(lock.try_lock().is_none());
        drop(g);
        let g2 = lock.try_lock();
        assert!(g2.is_some());
    }

    #[test]
    fn nested_distinct_locks() {
        let a = McsLock::new(1);
        let b = McsLock::new(2);
        let ga = a.lock();
        let gb = b.lock();
        assert_eq!(*ga + *gb, 3);
    }

    #[test]
    fn critical_sections_do_not_interleave() {
        // Each thread appends a begin/end pair; a correct lock never
        // interleaves the pairs of different threads.
        let log = Arc::new(McsLock::new(Vec::<(usize, bool)>::new()));
        let threads: Vec<_> = (0..4)
            .map(|id| {
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        let mut g = log.lock();
                        g.push((id, true));
                        g.push((id, false));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let log = log.lock();
        for pair in log.chunks(2) {
            assert_eq!(pair[0].0, pair[1].0, "interleaved critical sections");
            assert!(pair[0].1 && !pair[1].1);
        }
    }

    #[test]
    fn into_inner_returns_value() {
        let lock = McsLock::new(7);
        assert_eq!(lock.into_inner(), 7);
    }
}
