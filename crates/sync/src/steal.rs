//! Advisory load board for work-stealing victim selection.
//!
//! The steal *hand-off* rides the existing lock-free command mailbox
//! (`yasmin_sync::mailbox`): each shard's mailbox carries one wait-free
//! SPSC lane per peer, over which a thief sends its steal request and a
//! victim returns the detached job (or a refusal) on its own lane back
//! — a request/response lane pair per ordered shard pair, with both
//! directions completing in a bounded number of steps.
//!
//! What messaging alone cannot give a thief is *victim selection*: an
//! idle shard should not broadcast requests to every peer and make all
//! of them pay a drain round for nothing. The [`LoadBoard`] is the
//! missing probe surface: one cache-friendly atomic per shard, updated
//! by its owner after every engine interaction with its current ready
//! count, read by thieves with plain `Acquire` loads. The values are
//! **advisory** — a probe may race with a dispatch and name a victim
//! that turns out empty — which is fine: the steal request itself is
//! answered authoritatively by the victim (`EngineShard::try_steal` /
//! `EngineShard::release_stolen` in `yasmin-sched`, a deny otherwise).
//! Stale reads cost a wasted request, never correctness.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Cache-line padding so two shards' load counters never share a line
/// (the publish side writes on every engine interaction).
#[repr(align(64))]
struct PaddedLoad(AtomicUsize);

/// One advisory ready-count slot per shard; see the module docs.
pub struct LoadBoard {
    loads: Vec<PaddedLoad>,
}

impl std::fmt::Debug for LoadBoard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list()
            .entries(self.loads.iter().map(|l| l.0.load(Ordering::Relaxed)))
            .finish()
    }
}

impl LoadBoard {
    /// A board for `shards` shards, all starting at load 0.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        LoadBoard {
            loads: (0..shards)
                .map(|_| PaddedLoad(AtomicUsize::new(0)))
                .collect(),
        }
    }

    /// Number of slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.loads.len()
    }

    /// `true` when the board tracks no shards.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.loads.is_empty()
    }

    /// Publishes shard `i`'s current ready count (owner side; called
    /// after every engine interaction).
    pub fn publish(&self, i: usize, ready: usize) {
        self.loads[i].0.store(ready, Ordering::Release);
    }

    /// Shard `i`'s last published ready count (advisory).
    #[must_use]
    pub fn load(&self, i: usize) -> usize {
        self.loads[i].0.load(Ordering::Acquire)
    }

    /// The most loaded shard other than `me` with at least one ready
    /// job, ties broken towards the lowest index — the victim an idle
    /// thief should ask first. `None` when every peer looks empty.
    #[must_use]
    pub fn pick_victim(&self, me: usize) -> Option<usize> {
        let mut best: Option<(usize, usize)> = None;
        for (i, slot) in self.loads.iter().enumerate() {
            if i == me {
                continue;
            }
            let l = slot.0.load(Ordering::Acquire);
            if l == 0 {
                continue;
            }
            if best.is_none_or(|(bl, _)| l > bl) {
                best = Some((l, i));
            }
        }
        best.map(|(_, i)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_the_most_loaded_peer() {
        let b = LoadBoard::new(4);
        assert_eq!(b.len(), 4);
        assert!(!b.is_empty());
        assert_eq!(b.pick_victim(0), None, "everyone idle");
        b.publish(1, 2);
        b.publish(2, 7);
        b.publish(3, 7);
        assert_eq!(b.pick_victim(0), Some(2), "max load, lowest index");
        assert_eq!(b.load(2), 7);
        // A shard never names itself.
        b.publish(0, 100);
        assert_eq!(b.pick_victim(0), Some(2));
        assert_eq!(b.pick_victim(2), Some(0));
    }

    #[test]
    fn publish_overwrites_and_zero_hides() {
        let b = LoadBoard::new(2);
        b.publish(1, 3);
        assert_eq!(b.pick_victim(0), Some(1));
        b.publish(1, 0);
        assert_eq!(b.pick_victim(0), None, "drained victims disappear");
    }

    #[test]
    fn concurrent_publishes_and_probes_stay_coherent() {
        use std::sync::Arc;
        let b = Arc::new(LoadBoard::new(3));
        let publisher = {
            let b = Arc::clone(&b);
            std::thread::spawn(move || {
                for i in 0..50_000usize {
                    b.publish(1, i % 8);
                    b.publish(2, (i * 3) % 8);
                }
                b.publish(1, 5);
                b.publish(2, 1);
            })
        };
        let prober = {
            let b = Arc::clone(&b);
            std::thread::spawn(move || {
                for _ in 0..50_000 {
                    if let Some(v) = b.pick_victim(0) {
                        assert!(v == 1 || v == 2);
                    }
                }
            })
        };
        publisher.join().unwrap();
        prober.join().unwrap();
        assert_eq!(b.pick_victim(0), Some(1), "final publishes visible");
    }
}
