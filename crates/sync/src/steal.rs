//! Advisory load board for work-stealing victim selection.
//!
//! The steal *hand-off* rides the existing lock-free command mailbox
//! (`yasmin_sync::mailbox`): each shard's mailbox carries one wait-free
//! SPSC lane per peer, over which a thief sends its steal request and a
//! victim returns the detached jobs (or a refusal) on its own lane back
//! — a request/response lane pair per ordered shard pair, with both
//! directions completing in a bounded number of steps. Since the batch
//! protocol, one exchange can hand over up to `k` jobs; the board also
//! feeds the thief the victim/thief load gap from which `k` is derived.
//!
//! What messaging alone cannot give a thief is *victim selection*: an
//! idle shard should not broadcast requests to every peer and make all
//! of them pay a drain round for nothing. The [`LoadBoard`] is the
//! missing probe surface: one cache-padded atomic per shard, updated
//! by its owner after every engine interaction with its current ready
//! count, read by thieves with plain `Acquire` loads. The values are
//! **advisory** — a probe may race with a dispatch and name a victim
//! that turns out empty — which is fine: the steal request itself is
//! answered authoritatively by the victim (`EngineShard::try_steal` /
//! `EngineShard::release_stolen` and their batch variants in
//! `yasmin-sched`, a deny otherwise). Stale reads cost a wasted
//! request, never correctness.
//!
//! # Victim ranking
//!
//! [`LoadBoard::pick_victim`] ranks candidates by published load first —
//! the most loaded peer always wins, so the board never trades imbalance
//! correction for locality. Two further signals break *ties* between
//! equally loaded peers, both advisory and both cache-padded per shard:
//!
//! * a **donation history** ([`LoadBoard::record_donation`]): shards
//!   that recently granted a steal are preferred — a granted request is
//!   evidence the peer publishes honest, stealable load, where an
//!   untried peer may be all accelerator-bound or already-migrated
//!   jobs. History decays by halving ([`LoadBoard::decay_donations`],
//!   called periodically by the thief loop) so a burst of old donations
//!   does not pin victim choice forever;
//! * a **DAG-adjacency hint table** ([`LoadBoard::set_adjacent`]):
//!   shards connected to the thief by a cross-shard DAG edge are
//!   preferred, because jobs stolen from a graph neighbour keep their
//!   produced/consumed edge data on a core that already touches it
//!   (stolen successors stay cache-warm). The table is a per-shard
//!   bitmask filled once at runtime start from the task graph; shards
//!   past index 63 simply carry no hint.
//!
//! The full ranking key is `(load, adjacent-to-me, donations, lowest
//! index)` — every component is a pure function of published state, so
//! selection is deterministic for deterministic inputs; the simulator's
//! protocol loop relies on exactly that to keep batch-steal runs
//! bit-reproducible.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Cache-line padding so two shards' load counters never share a line
/// (the publish side writes on every engine interaction).
#[repr(align(64))]
struct PaddedLoad(AtomicUsize);

/// Cache-line-padded per-shard counter (donation history) or bitmask
/// (adjacency hints); same sharing argument as [`PaddedLoad`].
#[repr(align(64))]
struct PaddedWord(AtomicU64);

/// One advisory ready-count slot per shard, plus the donation-history
/// and DAG-adjacency tie-breakers; see the module docs.
pub struct LoadBoard {
    loads: Vec<PaddedLoad>,
    /// Steals granted by each shard since the last decay (victim side of
    /// the history: "who recently donated").
    donations: Vec<PaddedWord>,
    /// Bit `v` of `adjacency[t]` set ⇔ shards `t` and `v` share a
    /// cross-shard DAG edge (symmetric; shards ≥ 64 carry no hint).
    adjacency: Vec<PaddedWord>,
}

impl std::fmt::Debug for LoadBoard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list()
            .entries(self.loads.iter().map(|l| l.0.load(Ordering::Relaxed)))
            .finish()
    }
}

impl LoadBoard {
    /// A board for `shards` shards, all starting at load 0 with empty
    /// donation history and no adjacency hints.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        LoadBoard {
            loads: (0..shards)
                .map(|_| PaddedLoad(AtomicUsize::new(0)))
                .collect(),
            donations: (0..shards).map(|_| PaddedWord(AtomicU64::new(0))).collect(),
            adjacency: (0..shards).map(|_| PaddedWord(AtomicU64::new(0))).collect(),
        }
    }

    /// Number of slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.loads.len()
    }

    /// `true` when the board tracks no shards.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.loads.is_empty()
    }

    /// Publishes shard `i`'s current ready count (owner side; called
    /// after every engine interaction).
    pub fn publish(&self, i: usize, ready: usize) {
        self.loads[i].0.store(ready, Ordering::Release);
    }

    /// Shard `i`'s last published ready count (advisory).
    #[must_use]
    pub fn load(&self, i: usize) -> usize {
        self.loads[i].0.load(Ordering::Acquire)
    }

    /// Books a granted steal from `donor` (thief side, on receiving a
    /// `Stolen`/`StolenBatch` grant): recent donors are preferred among
    /// equally loaded victims. Saturates well below overflow.
    pub fn record_donation(&self, donor: usize) {
        let slot = &self.donations[donor].0;
        // Saturating add without a CAS loop: the counter is advisory, a
        // lost increment under contention is harmless.
        let v = slot.load(Ordering::Relaxed);
        if v < u64::MAX / 2 {
            slot.store(v + 1, Ordering::Relaxed);
        }
    }

    /// Shard `i`'s donation count since the last decay (advisory).
    #[must_use]
    pub fn donation_score(&self, i: usize) -> u64 {
        self.donations[i].0.load(Ordering::Relaxed)
    }

    /// Halves every donation counter — called periodically by thief
    /// loops so history stays *recent*: a shard that stops donating
    /// loses its preference within a few decay periods.
    pub fn decay_donations(&self) {
        for d in &self.donations {
            let v = d.0.load(Ordering::Relaxed);
            if v > 0 {
                d.0.store(v / 2, Ordering::Relaxed);
            }
        }
    }

    /// Marks shards `a` and `b` as DAG-adjacent (symmetric) — they own
    /// tasks connected by a cross-shard edge, so stealing between them
    /// keeps edge data warm. Hints for shards past index 63 are dropped.
    pub fn set_adjacent(&self, a: usize, b: usize) {
        if a == b {
            return;
        }
        if b < 64 {
            self.adjacency[a].0.fetch_or(1 << b, Ordering::Relaxed);
        }
        if a < 64 {
            self.adjacency[b].0.fetch_or(1 << a, Ordering::Relaxed);
        }
    }

    /// `true` when shards `a` and `b` were hinted adjacent.
    #[must_use]
    pub fn adjacent(&self, a: usize, b: usize) -> bool {
        b < 64 && self.adjacency[a].0.load(Ordering::Relaxed) & (1 << b) != 0
    }

    /// The victim an idle thief should ask first: the most loaded shard
    /// other than `me` with at least one ready job. Ties on load break
    /// towards DAG-adjacent shards, then towards recent donors, then
    /// towards the lowest index — a deterministic total order over the
    /// published state. `None` when every peer looks empty.
    #[must_use]
    pub fn pick_victim(&self, me: usize) -> Option<usize> {
        let mut best: Option<((usize, bool, u64), usize)> = None;
        for (i, slot) in self.loads.iter().enumerate() {
            if i == me {
                continue;
            }
            let l = slot.0.load(Ordering::Acquire);
            if l == 0 {
                continue;
            }
            let key = (l, self.adjacent(me, i), self.donation_score(i));
            if best.is_none_or(|(bk, _)| key > bk) {
                best = Some((key, i));
            }
        }
        best.map(|(_, i)| i)
    }

    /// The batch size a thief should request from `victim`: half the
    /// published load gap (the thief takes what levels the pair without
    /// overshooting into a reverse imbalance), at least 1, capped at
    /// `max`. Advisory like every board read — the victim's engine
    /// answers authoritatively with however many jobs are actually
    /// stealable.
    #[must_use]
    pub fn steal_batch_size(&self, victim: usize, thief_ready: usize, max: usize) -> usize {
        let gap = self.load(victim).saturating_sub(thief_ready);
        (gap / 2).clamp(1, max.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_the_most_loaded_peer() {
        let b = LoadBoard::new(4);
        assert_eq!(b.len(), 4);
        assert!(!b.is_empty());
        assert_eq!(b.pick_victim(0), None, "everyone idle");
        b.publish(1, 2);
        b.publish(2, 7);
        b.publish(3, 7);
        assert_eq!(b.pick_victim(0), Some(2), "max load, lowest index");
        assert_eq!(b.load(2), 7);
        // A shard never names itself.
        b.publish(0, 100);
        assert_eq!(b.pick_victim(0), Some(2));
        assert_eq!(b.pick_victim(2), Some(0));
    }

    #[test]
    fn publish_overwrites_and_zero_hides() {
        let b = LoadBoard::new(2);
        b.publish(1, 3);
        assert_eq!(b.pick_victim(0), Some(1));
        b.publish(1, 0);
        assert_eq!(b.pick_victim(0), None, "drained victims disappear");
    }

    #[test]
    fn load_always_dominates_the_tie_breakers() {
        // Locality and history must never override a genuine imbalance:
        // a strictly higher load wins against any adjacency + donations.
        let b = LoadBoard::new(3);
        b.publish(1, 3);
        b.publish(2, 4);
        b.set_adjacent(0, 1);
        for _ in 0..10 {
            b.record_donation(1);
        }
        assert_eq!(b.pick_victim(0), Some(2), "higher load beats both hints");
    }

    #[test]
    fn adjacency_breaks_load_ties() {
        let b = LoadBoard::new(4);
        b.publish(1, 5);
        b.publish(2, 5);
        b.publish(3, 5);
        assert_eq!(b.pick_victim(0), Some(1), "no hints: lowest index");
        b.set_adjacent(0, 2);
        assert!(b.adjacent(0, 2) && b.adjacent(2, 0), "hints are symmetric");
        assert!(!b.adjacent(0, 1));
        assert_eq!(b.pick_victim(0), Some(2), "DAG neighbour wins the tie");
        // Adjacency is per-thief: shard 3 has no neighbours, so its pick
        // falls through to the donation/index tie-break.
        assert_eq!(b.pick_victim(3), Some(1));
    }

    #[test]
    fn donation_history_prefers_recent_donors_and_decays() {
        let b = LoadBoard::new(3);
        b.publish(1, 5);
        b.publish(2, 5);
        b.record_donation(2);
        b.record_donation(2);
        assert_eq!(b.donation_score(2), 2);
        assert_eq!(b.pick_victim(0), Some(2), "recent donor wins the tie");
        // Decay halves the history; once both scores reach zero the
        // deterministic index tie-break takes over again.
        b.decay_donations();
        assert_eq!(b.donation_score(2), 1);
        assert_eq!(b.pick_victim(0), Some(2));
        b.decay_donations();
        assert_eq!(b.donation_score(2), 0);
        assert_eq!(b.pick_victim(0), Some(1), "decayed history stops mattering");
    }

    #[test]
    fn adjacency_outranks_donations_on_a_load_tie() {
        // Fixed preference order (adjacency, then donations, then index)
        // — a deterministic total order, not a weighted blend.
        let b = LoadBoard::new(3);
        b.publish(1, 5);
        b.publish(2, 5);
        b.record_donation(1);
        b.set_adjacent(0, 2);
        assert_eq!(b.pick_victim(0), Some(2), "adjacency beats donations");
    }

    #[test]
    fn steal_batch_size_tracks_half_the_load_gap() {
        let b = LoadBoard::new(2);
        b.publish(1, 12);
        assert_eq!(b.steal_batch_size(1, 0, 8), 6, "half the gap");
        assert_eq!(b.steal_batch_size(1, 8, 8), 2);
        assert_eq!(b.steal_batch_size(1, 12, 8), 1, "never below 1");
        b.publish(1, 100);
        assert_eq!(b.steal_batch_size(1, 0, 8), 8, "capped at max");
        assert_eq!(
            b.steal_batch_size(1, 0, 0),
            1,
            "degenerate cap still asks for one"
        );
    }

    #[test]
    fn concurrent_publishes_and_probes_stay_coherent() {
        use std::sync::Arc;
        let b = Arc::new(LoadBoard::new(3));
        let publisher = {
            let b = Arc::clone(&b);
            std::thread::spawn(move || {
                for i in 0..50_000usize {
                    b.publish(1, i % 8);
                    b.publish(2, (i * 3) % 8);
                    b.record_donation(1);
                    if i % 64 == 0 {
                        b.decay_donations();
                    }
                }
                b.publish(1, 5);
                b.publish(2, 1);
            })
        };
        let prober = {
            let b = Arc::clone(&b);
            std::thread::spawn(move || {
                for _ in 0..50_000 {
                    if let Some(v) = b.pick_victim(0) {
                        assert!(v == 1 || v == 2);
                    }
                }
            })
        };
        publisher.join().unwrap();
        prober.join().unwrap();
        assert_eq!(b.pick_victim(0), Some(1), "final publishes visible");
    }
}
