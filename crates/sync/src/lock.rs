//! A unified lock selectable between the OS-backed and lock-free
//! implementations.
//!
//! "Internally we implement synchronisation primitives … in two different
//! manners: a first implementation uses the POSIX API implemented in the
//! kernel and GLibC. A second implementation relies on lock-free
//! algorithms … It is possible to select one of the two options at compile
//! time using the configuration file" (§3.5). [`YasminLock`] makes the
//! choice a constructor argument; both variants expose one guard type so
//! call sites are oblivious.

use crate::mcs::{McsGuard, McsLock};
use parking_lot::{Mutex, MutexGuard};

/// Which lock implementation backs a [`YasminLock`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum LockKind {
    /// OS/futex-backed mutex (the paper's POSIX/GLibC option): better
    /// energy behaviour, kernel calls are hard to bound for WCET.
    #[default]
    Posix,
    /// MCS queue spinlock (the paper's lock-free option): analysable
    /// bounded spinning, higher energy draw.
    LockFree,
}

/// A mutual-exclusion lock whose implementation is chosen at run time.
///
/// # Examples
///
/// ```
/// use yasmin_sync::lock::{LockKind, YasminLock};
///
/// for kind in [LockKind::Posix, LockKind::LockFree] {
///     let lock = YasminLock::new(kind, 0u32);
///     *lock.lock() += 1;
///     assert_eq!(*lock.lock(), 1);
/// }
/// ```
#[derive(Debug)]
pub enum YasminLock<T> {
    /// OS-backed variant.
    Posix(Mutex<T>),
    /// MCS spinlock variant.
    LockFree(McsLock<T>),
}

impl<T> YasminLock<T> {
    /// Creates a lock of the given kind around `value`.
    #[must_use]
    pub fn new(kind: LockKind, value: T) -> Self {
        match kind {
            LockKind::Posix => YasminLock::Posix(Mutex::new(value)),
            LockKind::LockFree => YasminLock::LockFree(McsLock::new(value)),
        }
    }

    /// Acquires the lock.
    pub fn lock(&self) -> YasminGuard<'_, T> {
        match self {
            YasminLock::Posix(m) => YasminGuard::Posix(m.lock()),
            YasminLock::LockFree(m) => YasminGuard::LockFree(m.lock()),
        }
    }

    /// Tries to acquire the lock without waiting.
    pub fn try_lock(&self) -> Option<YasminGuard<'_, T>> {
        match self {
            YasminLock::Posix(m) => m.try_lock().map(YasminGuard::Posix),
            YasminLock::LockFree(m) => m.try_lock().map(YasminGuard::LockFree),
        }
    }

    /// The kind backing this lock.
    #[must_use]
    pub fn kind(&self) -> LockKind {
        match self {
            YasminLock::Posix(_) => LockKind::Posix,
            YasminLock::LockFree(_) => LockKind::LockFree,
        }
    }
}

/// Guard for [`YasminLock`]; releases on drop.
#[derive(Debug)]
pub enum YasminGuard<'a, T> {
    /// Guard of the OS-backed variant.
    Posix(MutexGuard<'a, T>),
    /// Guard of the MCS variant.
    LockFree(McsGuard<'a, T>),
}

impl<T> std::ops::Deref for YasminGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match self {
            YasminGuard::Posix(g) => g,
            YasminGuard::LockFree(g) => g,
        }
    }
}

impl<T> std::ops::DerefMut for YasminGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match self {
            YasminGuard::Posix(g) => &mut *g,
            YasminGuard::LockFree(g) => &mut *g,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn both_kinds_exclude() {
        for kind in [LockKind::Posix, LockKind::LockFree] {
            let lock = Arc::new(YasminLock::new(kind, 0u64));
            let threads: Vec<_> = (0..4)
                .map(|_| {
                    let lock = Arc::clone(&lock);
                    std::thread::spawn(move || {
                        for _ in 0..5_000 {
                            *lock.lock() += 1;
                        }
                    })
                })
                .collect();
            for t in threads {
                t.join().unwrap();
            }
            assert_eq!(*lock.lock(), 20_000, "kind {kind:?}");
        }
    }

    #[test]
    fn kind_is_reported() {
        assert_eq!(YasminLock::new(LockKind::Posix, ()).kind(), LockKind::Posix);
        assert_eq!(
            YasminLock::new(LockKind::LockFree, ()).kind(),
            LockKind::LockFree
        );
    }

    #[test]
    fn try_lock_both_kinds() {
        for kind in [LockKind::Posix, LockKind::LockFree] {
            let lock = YasminLock::new(kind, 5);
            let g = lock.lock();
            assert!(lock.try_lock().is_none());
            drop(g);
            assert_eq!(*lock.try_lock().unwrap(), 5);
        }
    }
}
