//! A mutex that tracks priorities for the Priority Inheritance Protocol.
//!
//! When YASMIN cannot find a task version whose hardware resources are
//! free, "and if the current task has a higher priority than the one
//! currently using the targeted resource, we apply a Priority Inheritance
//! Protocol (PIP) and reschedule the task" (§3.2).
//!
//! [`PipMutex`] is the substrate: it records the holder's base priority
//! and the most urgent waiting priority, and exposes the *effective*
//! (inherited) priority so a scheduler can boost the holder. Priorities
//! are raw `u64` urgencies, **smaller = more urgent**, matching
//! `yasmin_core::priority::Priority::raw`.

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

#[derive(Debug)]
struct PipState {
    /// Base priority of the current holder, `None` when free.
    holder: Option<u64>,
    /// Priorities of threads currently blocked on the mutex.
    waiters: Vec<u64>,
}

#[derive(Debug)]
struct Inner<T> {
    state: Mutex<PipState>,
    cond: Condvar,
    data: Mutex<T>,
}

/// A priority-tracking mutex implementing PIP bookkeeping.
///
/// # Examples
///
/// ```
/// use yasmin_sync::pip::PipMutex;
///
/// let m = PipMutex::new(0u32);
/// {
///     let mut g = m.lock(10); // holder with base priority 10
///     *g += 1;
///     assert_eq!(m.effective_priority(), Some(10));
/// }
/// assert_eq!(m.effective_priority(), None); // free again
/// ```
#[derive(Debug)]
pub struct PipMutex<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for PipMutex<T> {
    fn clone(&self) -> Self {
        PipMutex {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> PipMutex<T> {
    /// Creates a PIP mutex around `value`.
    #[must_use]
    pub fn new(value: T) -> Self {
        PipMutex {
            inner: Arc::new(Inner {
                state: Mutex::new(PipState {
                    holder: None,
                    waiters: Vec::new(),
                }),
                cond: Condvar::new(),
                data: Mutex::new(value),
            }),
        }
    }

    /// Acquires the mutex; `priority` is the caller's base urgency
    /// (smaller = more urgent). Blocks while held by another thread.
    pub fn lock(&self, priority: u64) -> PipGuard<'_, T> {
        {
            let mut st = self.inner.state.lock();
            while st.holder.is_some() {
                st.waiters.push(priority);
                self.inner.cond.wait(&mut st);
                // Remove one registration of our priority (we re-register
                // if we loop again).
                if let Some(pos) = st.waiters.iter().position(|&p| p == priority) {
                    st.waiters.swap_remove(pos);
                }
            }
            st.holder = Some(priority);
        }
        let data = self.inner.data.lock();
        PipGuard {
            mutex: self,
            data: Some(data),
        }
    }

    /// Tries to acquire without blocking.
    #[must_use]
    pub fn try_lock(&self, priority: u64) -> Option<PipGuard<'_, T>> {
        let mut st = self.inner.state.lock();
        if st.holder.is_some() {
            return None;
        }
        st.holder = Some(priority);
        drop(st);
        let data = self.inner.data.lock();
        Some(PipGuard {
            mutex: self,
            data: Some(data),
        })
    }

    /// The holder's *effective* priority: the most urgent of its base
    /// priority and every waiter's priority (the inherited ceiling).
    /// `None` when the mutex is free.
    #[must_use]
    pub fn effective_priority(&self) -> Option<u64> {
        let st = self.inner.state.lock();
        let holder = st.holder?;
        Some(st.waiters.iter().copied().fold(holder, u64::min))
    }

    /// The holder's base priority, `None` when free.
    #[must_use]
    pub fn holder_priority(&self) -> Option<u64> {
        self.inner.state.lock().holder
    }

    /// `true` if a more urgent thread waits on the current holder — the
    /// condition under which the scheduler applies PIP boosting (§3.2).
    #[must_use]
    pub fn has_priority_inversion(&self) -> bool {
        let st = self.inner.state.lock();
        match st.holder {
            None => false,
            Some(h) => st.waiters.iter().any(|&w| w < h),
        }
    }
}

/// RAII guard for [`PipMutex`]; releases and wakes waiters on drop.
#[derive(Debug)]
pub struct PipGuard<'a, T> {
    mutex: &'a PipMutex<T>,
    data: Option<parking_lot::MutexGuard<'a, T>>,
}

impl<T> std::ops::Deref for PipGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.data.as_ref().expect("guard holds data until drop")
    }
}

impl<T> std::ops::DerefMut for PipGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.data.as_mut().expect("guard holds data until drop")
    }
}

impl<T> Drop for PipGuard<'_, T> {
    fn drop(&mut self) {
        self.data.take();
        let mut st = self.mutex.inner.state.lock();
        st.holder = None;
        drop(st);
        self.mutex.inner.cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    #[test]
    fn exclusive_access() {
        let m = Arc::new(PipMutex::new(0u64));
        let threads: Vec<_> = (0..4)
            .map(|i| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..5_000 {
                        *m.lock(i) += 1;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*m.lock(0), 20_000);
    }

    #[test]
    fn effective_priority_inherits_from_waiter() {
        let m = Arc::new(PipMutex::new(()));
        let g = m.lock(100); // low-priority holder
        assert_eq!(m.effective_priority(), Some(100));
        assert!(!m.has_priority_inversion());

        let m2 = Arc::clone(&m);
        let waiter = std::thread::spawn(move || {
            let _g = m2.lock(5); // urgent waiter
        });
        // Wait until the waiter registers.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !m.has_priority_inversion() {
            assert!(std::time::Instant::now() < deadline, "waiter never blocked");
            std::thread::yield_now();
        }
        assert_eq!(m.effective_priority(), Some(5));
        drop(g);
        waiter.join().unwrap();
        assert_eq!(m.effective_priority(), None);
    }

    #[test]
    fn try_lock_semantics() {
        let m = PipMutex::new(1);
        let g = m.try_lock(3).unwrap();
        assert!(m.try_lock(1).is_none());
        assert_eq!(m.holder_priority(), Some(3));
        drop(g);
        assert!(m.try_lock(1).is_some());
    }

    #[test]
    fn waiters_eventually_acquire() {
        let m = Arc::new(PipMutex::new(AtomicU64::new(0)));
        let holders: Vec<_> = (0..8)
            .map(|i| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    let g = m.lock(i);
                    g.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for t in holders {
            t.join().unwrap();
        }
        assert_eq!(m.lock(0).load(Ordering::SeqCst), 8);
    }
}
