//! Waiting strategies: kernel sleep vs busy spin.
//!
//! YASMIN offers "the option to configure the waiting strategy in two
//! ways: 1. sleep (default): calls some kernel code, which is hardly
//! timing-analysable, 2. spinlock: enable a more precise overhead analysis
//! at the cost of potential energy waste" (§3.5). The scheduler thread and
//! idle workers wait for their next activation through this module.

use std::time::{Duration as StdDuration, Instant as StdInstant};

/// How a thread waits for a point in time.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum WaitMode {
    /// Sleep in the kernel, waking close to (but not before) the target.
    #[default]
    Sleep,
    /// Busy-spin on the clock until the target: precise, energy-hungry.
    Spin,
    /// Sleep until shortly before the target, then spin the rest — the
    /// usual compromise used by cyclictest-style measurement loops.
    HybridSpin {
        /// How long before the target to switch from sleeping to spinning.
        spin_window_us: u32,
    },
}

/// Blocks the calling thread until `deadline` (a [`std::time::Instant`]),
/// using the given strategy. Returns the observed wake-up lateness.
///
/// Returns [`StdDuration::ZERO`] if `deadline` already passed.
pub fn wait_until(mode: WaitMode, deadline: StdInstant) -> StdDuration {
    match mode {
        WaitMode::Sleep => {
            let now = StdInstant::now();
            if deadline > now {
                std::thread::sleep(deadline - now);
            }
        }
        WaitMode::Spin => {
            while StdInstant::now() < deadline {
                std::hint::spin_loop();
            }
        }
        WaitMode::HybridSpin { spin_window_us } => {
            let window = StdDuration::from_micros(u64::from(spin_window_us));
            let now = StdInstant::now();
            if deadline > now + window {
                std::thread::sleep(deadline - now - window);
            }
            while StdInstant::now() < deadline {
                std::hint::spin_loop();
            }
        }
    }
    StdInstant::now().saturating_duration_since(deadline)
}

/// Blocks for `d` from now using the given strategy; returns lateness.
pub fn wait_for(mode: WaitMode, d: StdDuration) -> StdDuration {
    wait_until(mode, StdInstant::now() + d)
}

/// Exponential backoff for contended retry loops (spin a few times, then
/// yield). Bounded: never sleeps, so worst-case per-step cost is small.
#[derive(Debug, Default)]
pub struct Backoff {
    step: u32,
}

impl Backoff {
    /// A fresh backoff.
    #[must_use]
    pub fn new() -> Self {
        Backoff { step: 0 }
    }

    /// Performs one backoff step.
    pub fn snooze(&mut self) {
        if self.step < 6 {
            for _ in 0..(1u32 << self.step) {
                std::hint::spin_loop();
            }
            self.step += 1;
        } else {
            std::thread::yield_now();
        }
    }

    /// Resets to the initial (cheapest) step.
    pub fn reset(&mut self) {
        self.step = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sleep_reaches_deadline() {
        let start = StdInstant::now();
        let late = wait_for(WaitMode::Sleep, StdDuration::from_millis(5));
        assert!(start.elapsed() >= StdDuration::from_millis(5));
        // Lateness is non-negative by construction.
        assert!(late >= StdDuration::ZERO);
    }

    #[test]
    fn spin_reaches_deadline_precisely() {
        let start = StdInstant::now();
        let late = wait_for(WaitMode::Spin, StdDuration::from_micros(200));
        assert!(start.elapsed() >= StdDuration::from_micros(200));
        // Spinning should overshoot far less than a scheduler quantum.
        assert!(late < StdDuration::from_millis(50));
    }

    #[test]
    fn hybrid_reaches_deadline() {
        let start = StdInstant::now();
        wait_for(
            WaitMode::HybridSpin {
                spin_window_us: 100,
            },
            StdDuration::from_millis(2),
        );
        assert!(start.elapsed() >= StdDuration::from_millis(2));
    }

    #[test]
    fn past_deadline_returns_immediately() {
        let past = StdInstant::now() - StdDuration::from_millis(1);
        for mode in [
            WaitMode::Sleep,
            WaitMode::Spin,
            WaitMode::HybridSpin { spin_window_us: 10 },
        ] {
            let late = wait_until(mode, past);
            assert!(late >= StdDuration::from_millis(1));
        }
    }

    #[test]
    fn backoff_progresses() {
        let mut b = Backoff::new();
        for _ in 0..20 {
            b.snooze();
        }
        b.reset();
        b.snooze();
    }
}
