//! A bounded, wait-free single-producer single-consumer FIFO ring.
//!
//! This is the executable form of the paper's FIFO channels: each
//! `channel_connect(src, dst, CID)` wires exactly one producer task to one
//! consumer task (§3.1), so SPSC semantics suffice and both `push` and
//! `pop` complete in a bounded number of steps — a prerequisite for WCET
//! analysis of the task bodies that call them.
//!
//! Capacity is fixed at creation; there is no allocation after
//! construction, matching the paper's "no dynamic memory allocation" rule.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Error returned by [`Producer::push`] when the ring is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Full<T>(pub T);

impl<T> std::fmt::Display for Full<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("channel is full")
    }
}

impl<T: std::fmt::Debug> std::error::Error for Full<T> {}

#[derive(Debug)]
struct Ring<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next slot to read; only advanced by the consumer.
    head: AtomicUsize,
    /// Next slot to write; only advanced by the producer.
    tail: AtomicUsize,
}

// SAFETY: head/tail indices partition the slots between the single
// producer and the single consumer; a slot is touched by exactly one side
// at a time.
unsafe impl<T: Send> Sync for Ring<T> {}
unsafe impl<T: Send> Send for Ring<T> {}

impl<T> Ring<T> {
    fn len(&self) -> usize {
        self.tail
            .load(Ordering::Acquire)
            .wrapping_sub(self.head.load(Ordering::Acquire))
    }
}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Drain any items never consumed.
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        let cap = self.buf.len();
        let mut i = head;
        while i != tail {
            // SAFETY: slots in [head, tail) hold initialised values.
            unsafe {
                (*self.buf[i % cap].get()).assume_init_drop();
            }
            i = i.wrapping_add(1);
        }
    }
}

/// Creates a bounded SPSC channel with room for `capacity` items.
///
/// # Panics
///
/// Panics if `capacity` is zero — zero-capacity (precedence-only)
/// channels are handled one level up, in the runtime, as token counters.
///
/// # Examples
///
/// ```
/// let (mut tx, mut rx) = yasmin_sync::spsc::channel::<u32>(2);
/// tx.push(1).unwrap();
/// tx.push(2).unwrap();
/// assert!(tx.push(3).is_err());
/// assert_eq!(rx.pop(), Some(1));
/// assert_eq!(rx.pop(), Some(2));
/// assert_eq!(rx.pop(), None);
/// ```
#[must_use]
pub fn channel<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "spsc capacity must be positive");
    let buf = (0..capacity)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let ring = Arc::new(Ring {
        buf,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
    });
    (
        Producer {
            ring: Arc::clone(&ring),
        },
        Consumer { ring },
    )
}

/// The producing endpoint; owned by the source task.
#[derive(Debug)]
pub struct Producer<T> {
    ring: Arc<Ring<T>>,
}

impl<T: Send> Producer<T> {
    /// Appends `value`, or returns it in [`Full`] when the ring has no
    /// space.
    ///
    /// # Errors
    ///
    /// [`Full`] when `capacity` items are already buffered.
    pub fn push(&mut self, value: T) -> Result<(), Full<T>> {
        let tail = self.ring.tail.load(Ordering::Relaxed);
        let head = self.ring.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) == self.ring.buf.len() {
            return Err(Full(value));
        }
        let slot = &self.ring.buf[tail % self.ring.buf.len()];
        // SAFETY: the slot is outside [head, tail), so the consumer does
        // not touch it; we are the only producer.
        unsafe {
            (*slot.get()).write(value);
        }
        self.ring
            .tail
            .store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Number of items currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` if nothing is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` if a `push` would fail.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.len() == self.ring.buf.len()
    }

    /// The fixed capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.ring.buf.len()
    }
}

/// The consuming endpoint; owned by the destination task.
#[derive(Debug)]
pub struct Consumer<T> {
    ring: Arc<Ring<T>>,
}

impl<T: Send> Consumer<T> {
    /// A reference to the oldest item without removing it, or `None`
    /// when empty.
    ///
    /// Only the consumer advances `head`, so the referenced slot cannot
    /// be overwritten by the producer while the borrow lives: the
    /// producer writes strictly outside `[head, tail)`.
    #[must_use]
    pub fn peek(&self) -> Option<&T> {
        let head = self.ring.head.load(Ordering::Relaxed);
        let tail = self.ring.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let slot = &self.ring.buf[head % self.ring.buf.len()];
        // SAFETY: the slot is inside [head, tail), initialised by the
        // producer; we are the only consumer and do not advance head here.
        Some(unsafe { (*slot.get()).assume_init_ref() })
    }

    /// Removes and returns the oldest item, or `None` when empty.
    #[must_use]
    pub fn pop(&mut self) -> Option<T> {
        let head = self.ring.head.load(Ordering::Relaxed);
        let tail = self.ring.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let slot = &self.ring.buf[head % self.ring.buf.len()];
        // SAFETY: the slot is inside [head, tail), initialised by the
        // producer and not yet consumed; we are the only consumer.
        let value = unsafe { (*slot.get()).assume_init_read() };
        self.ring
            .head
            .store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// Number of items currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` if nothing is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fixed capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.ring.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_single_thread() {
        let (mut tx, mut rx) = channel(4);
        for i in 0..4 {
            tx.push(i).unwrap();
        }
        assert!(tx.is_full());
        for i in 0..4 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert!(rx.is_empty());
    }

    #[test]
    fn peek_does_not_consume() {
        let (mut tx, mut rx) = channel(2);
        assert_eq!(rx.peek(), None);
        tx.push(7).unwrap();
        tx.push(8).unwrap();
        assert_eq!(rx.peek(), Some(&7));
        assert_eq!(rx.peek(), Some(&7), "peek is idempotent");
        assert_eq!(rx.pop(), Some(7));
        assert_eq!(rx.peek(), Some(&8));
        assert_eq!(rx.pop(), Some(8));
        assert_eq!(rx.peek(), None);
    }

    #[test]
    fn push_to_full_returns_value() {
        let (mut tx, _rx) = channel(1);
        tx.push("a").unwrap();
        assert_eq!(tx.push("b"), Err(Full("b")));
    }

    #[test]
    fn wraps_around_many_times() {
        let (mut tx, mut rx) = channel(3);
        for round in 0u64..1000 {
            tx.push(round).unwrap();
            assert_eq!(rx.pop(), Some(round));
        }
    }

    #[test]
    fn cross_thread_transfer_preserves_order() {
        let (mut tx, mut rx) = channel::<u64>(16);
        let producer = std::thread::spawn(move || {
            let mut backoff = crate::wait::Backoff::new();
            for i in 0..100_000u64 {
                loop {
                    match tx.push(i) {
                        Ok(()) => {
                            backoff.reset();
                            break;
                        }
                        Err(Full(_)) => backoff.snooze(),
                    }
                }
            }
        });
        let mut expected = 0u64;
        let mut backoff = crate::wait::Backoff::new();
        while expected < 100_000 {
            if let Some(v) = rx.pop() {
                assert_eq!(v, expected);
                expected += 1;
                backoff.reset();
            } else {
                backoff.snooze();
            }
        }
        producer.join().unwrap();
        assert!(rx.is_empty());
    }

    #[test]
    fn dropping_nonempty_ring_drops_items() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct Tracked;
        impl Drop for Tracked {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (mut tx, rx) = channel(8);
        for _ in 0..5 {
            tx.push(Tracked).unwrap();
        }
        drop(tx);
        drop(rx);
        assert_eq!(DROPS.load(Ordering::SeqCst), 5);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = channel::<u8>(0);
    }
}
