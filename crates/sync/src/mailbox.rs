//! A lock-free multi-producer / single-consumer **command mailbox**.
//!
//! The sharded scheduler (one engine shard per worker, PR 3) needs a
//! feed path that lets several producers — worker threads handing back
//! completions, control threads injecting activations, external tick
//! sources — deliver commands to a single shard owner without any lock
//! on the hot path. Rather than a CAS-looping MPMC queue, the mailbox
//! composes the existing wait-free [`crate::spsc`] ring: **one SPSC lane
//! per producer**, drained by the single owner. Every `send` and every
//! `recv` therefore completes in a bounded number of steps (no retry
//! loops under contention), which keeps the path WCET-analysable — the
//! same argument the paper makes for its FIFO channels (§3.5).
//!
//! Properties:
//!
//! * **per-lane FIFO**: commands from one producer arrive in order;
//!   cross-lane order is decided by the consumer (round-robin in
//!   [`MailboxReceiver::try_recv`], or caller-driven via the per-lane
//!   API for deterministic merges);
//! * **O(1) emptiness**: a shared counter tracks pending commands so an
//!   idle owner does not scan all lanes to discover there is nothing to
//!   do (the counter is advisory — it may transiently over-count while
//!   a `send` is in flight, but never under-counts);
//! * **close semantics**: dropping (or [`MailboxSender::close`]-ing) a
//!   sender marks its lane closed; the owner can distinguish "lane empty
//!   for now" from "lane will never produce again", which is what a
//!   deterministic merge needs for its watermark;
//! * **no allocation after construction**: lanes are fixed-capacity
//!   rings created up front.

use crate::spsc;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Error returned by [`MailboxSender::send`] when the sender's lane is
/// full (the owner is not draining fast enough — back-pressure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MailboxFull<T>(pub T);

impl<T> std::fmt::Display for MailboxFull<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("mailbox lane is full")
    }
}

impl<T: std::fmt::Debug> std::error::Error for MailboxFull<T> {}

struct LaneShared {
    pending: Arc<AtomicUsize>,
    closed: Arc<AtomicBool>,
}

/// Creates a command mailbox with `lanes` producers, each backed by a
/// private SPSC ring of `lane_capacity` slots.
///
/// Returns one [`MailboxSender`] per lane plus the single
/// [`MailboxReceiver`]. Senders are `Send` and are meant to be moved to
/// their producer threads; each is single-producer (it owns its lane).
///
/// # Panics
///
/// Panics if `lanes` or `lane_capacity` is zero.
#[must_use]
pub fn mailbox<T: Send>(
    lanes: usize,
    lane_capacity: usize,
) -> (Vec<MailboxSender<T>>, MailboxReceiver<T>) {
    assert!(lanes > 0, "mailbox needs at least one lane");
    let pending = Arc::new(AtomicUsize::new(0));
    let mut senders = Vec::with_capacity(lanes);
    let mut receivers = Vec::with_capacity(lanes);
    for _ in 0..lanes {
        let (tx, rx) = spsc::channel::<T>(lane_capacity);
        let closed = Arc::new(AtomicBool::new(false));
        senders.push(MailboxSender {
            lane: tx,
            shared: LaneShared {
                pending: Arc::clone(&pending),
                closed: Arc::clone(&closed),
            },
        });
        receivers.push(Lane { rx, closed });
    }
    (
        senders,
        MailboxReceiver {
            lanes: receivers,
            next: 0,
            pending,
        },
    )
}

/// The producing endpoint of one mailbox lane (single producer).
pub struct MailboxSender<T> {
    lane: spsc::Producer<T>,
    shared: LaneShared,
}

impl<T: Send> std::fmt::Debug for MailboxSender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MailboxSender")
            .field("buffered", &self.lane.len())
            .field("closed", &self.shared.closed.load(Ordering::Relaxed))
            .finish()
    }
}

impl<T: Send> MailboxSender<T> {
    /// Enqueues `cmd` on this producer's lane.
    ///
    /// # Errors
    ///
    /// [`MailboxFull`] returning the command when the lane has no room;
    /// the producer should back off and retry (the owner drains).
    pub fn send(&mut self, cmd: T) -> Result<(), MailboxFull<T>> {
        // Count *before* the push: the counter must never under-count,
        // or an owner could believe the mailbox empty while a command is
        // already visible in a lane.
        self.shared.pending.fetch_add(1, Ordering::Release);
        match self.lane.push(cmd) {
            Ok(()) => Ok(()),
            Err(spsc::Full(v)) => {
                self.shared.pending.fetch_sub(1, Ordering::Release);
                Err(MailboxFull(v))
            }
        }
    }

    /// Commands currently buffered in this lane.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lane.len()
    }

    /// `true` when this lane holds no commands.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lane.is_empty()
    }

    /// The fixed per-lane capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.lane.capacity()
    }

    /// Marks the lane closed: the owner will drain what is buffered and
    /// then treat the lane as finished. Dropping the sender closes the
    /// lane too; `close` exists for making the hand-off explicit.
    pub fn close(&mut self) {
        self.shared.closed.store(true, Ordering::Release);
    }
}

impl<T> Drop for MailboxSender<T> {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::Release);
    }
}

struct Lane<T> {
    rx: spsc::Consumer<T>,
    closed: Arc<AtomicBool>,
}

/// The single consuming endpoint of a mailbox (the shard owner).
pub struct MailboxReceiver<T> {
    lanes: Vec<Lane<T>>,
    next: usize,
    pending: Arc<AtomicUsize>,
}

impl<T> std::fmt::Debug for MailboxReceiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MailboxReceiver")
            .field("lanes", &self.lanes.len())
            .field("pending", &self.pending.load(Ordering::Relaxed))
            .finish()
    }
}

impl<T: Send> MailboxReceiver<T> {
    /// Removes and returns one command, scanning lanes round-robin from
    /// just past the lane served last (so a chatty producer cannot
    /// starve the others). Returns `None` when every lane is empty.
    #[must_use]
    pub fn try_recv(&mut self) -> Option<T> {
        if self.pending.load(Ordering::Acquire) == 0 {
            return None; // O(1) idle fast path
        }
        let n = self.lanes.len();
        for k in 0..n {
            let i = (self.next + k) % n;
            if let Some(cmd) = self.lanes[i].rx.pop() {
                self.pending.fetch_sub(1, Ordering::Release);
                self.next = (i + 1) % n;
                return Some(cmd);
            }
        }
        None
    }

    /// Commands pending across all lanes. Advisory: may transiently
    /// over-count while a `send` is mid-flight, never under-counts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pending.load(Ordering::Acquire)
    }

    /// `true` when no command is pending (subject to the same advisory
    /// caveat as [`MailboxReceiver::len`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of lanes (producers) this mailbox was built with.
    #[must_use]
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// `true` while lane `i`'s producer may still send (its sender has
    /// not been dropped or closed). Buffered commands may remain even
    /// after the lane closes; drain with [`MailboxReceiver::pop_lane`].
    #[must_use]
    pub fn lane_open(&self, i: usize) -> bool {
        !self.lanes[i].closed.load(Ordering::Acquire)
    }

    /// The oldest command buffered in lane `i` without consuming it —
    /// the primitive a deterministic k-way merge needs to pick the next
    /// lane by timestamp.
    #[must_use]
    pub fn peek_lane(&self, i: usize) -> Option<&T> {
        self.lanes[i].rx.peek()
    }

    /// Removes the oldest command of lane `i` specifically.
    #[must_use]
    pub fn pop_lane(&mut self, i: usize) -> Option<T> {
        let cmd = self.lanes[i].rx.pop();
        if cmd.is_some() {
            self.pending.fetch_sub(1, Ordering::Release);
        }
        cmd
    }

    /// `true` once every lane is closed *and* fully drained: no command
    /// is buffered and none can ever arrive.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.lanes
            .iter()
            .all(|l| l.closed.load(Ordering::Acquire) && l.rx.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wait::Backoff;

    #[test]
    fn round_robin_serves_all_lanes() {
        let (mut txs, mut rx) = mailbox::<u32>(3, 4);
        for (i, tx) in txs.iter_mut().enumerate() {
            tx.send(i as u32 * 10).unwrap();
            tx.send(i as u32 * 10 + 1).unwrap();
        }
        assert_eq!(rx.len(), 6);
        // One command per lane per round, lane order 0,1,2.
        assert_eq!(rx.try_recv(), Some(0));
        assert_eq!(rx.try_recv(), Some(10));
        assert_eq!(rx.try_recv(), Some(20));
        assert_eq!(rx.try_recv(), Some(1));
        assert_eq!(rx.try_recv(), Some(11));
        assert_eq!(rx.try_recv(), Some(21));
        assert_eq!(rx.try_recv(), None);
        assert!(rx.is_empty());
    }

    #[test]
    fn full_lane_rejects_and_returns_command() {
        let (mut txs, mut rx) = mailbox::<u8>(1, 2);
        txs[0].send(1).unwrap();
        txs[0].send(2).unwrap();
        assert_eq!(txs[0].send(3), Err(MailboxFull(3)));
        assert_eq!(rx.len(), 2, "failed send must not leak into the count");
        assert_eq!(rx.try_recv(), Some(1));
        txs[0].send(3).unwrap();
        assert_eq!(rx.try_recv(), Some(2));
        assert_eq!(rx.try_recv(), Some(3));
    }

    #[test]
    fn close_and_drop_finish_lanes() {
        let (mut txs, mut rx) = mailbox::<u8>(2, 4);
        txs[0].send(7).unwrap();
        txs[0].close();
        assert!(!rx.lane_open(0));
        assert!(rx.lane_open(1));
        assert!(!rx.is_finished(), "lane 0 still holds a command");
        assert_eq!(rx.try_recv(), Some(7));
        drop(txs);
        assert!(rx.is_finished());
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn per_lane_peek_and_pop_support_merging() {
        let (mut txs, mut rx) = mailbox::<u64>(2, 8);
        txs[0].send(5).unwrap();
        txs[0].send(9).unwrap();
        txs[1].send(3).unwrap();
        // Merge by minimum head value.
        assert_eq!(rx.peek_lane(0), Some(&5));
        assert_eq!(rx.peek_lane(1), Some(&3));
        assert_eq!(rx.pop_lane(1), Some(3));
        assert_eq!(rx.peek_lane(1), None);
        assert_eq!(rx.pop_lane(0), Some(5));
        assert_eq!(rx.pop_lane(0), Some(9));
        assert_eq!(rx.len(), 0);
    }

    #[test]
    fn concurrent_producers_preserve_lane_fifo_and_lose_nothing() {
        const PER_LANE: u64 = 20_000;
        const LANES: usize = 3;
        let (txs, mut rx) = mailbox::<(usize, u64)>(LANES, 16);
        let producers: Vec<_> = txs
            .into_iter()
            .enumerate()
            .map(|(lane, mut tx)| {
                std::thread::spawn(move || {
                    let mut backoff = Backoff::new();
                    for i in 0..PER_LANE {
                        let mut cmd = (lane, i);
                        loop {
                            match tx.send(cmd) {
                                Ok(()) => {
                                    backoff.reset();
                                    break;
                                }
                                Err(MailboxFull(v)) => {
                                    cmd = v;
                                    backoff.snooze();
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        let mut seen = [0u64; LANES];
        let mut total = 0u64;
        let mut backoff = Backoff::new();
        while total < PER_LANE * LANES as u64 {
            match rx.try_recv() {
                Some((lane, i)) => {
                    assert_eq!(i, seen[lane], "lane {lane} out of order");
                    seen[lane] += 1;
                    total += 1;
                    backoff.reset();
                }
                None => backoff.snooze(),
            }
        }
        for p in producers {
            p.join().unwrap();
        }
        assert!(rx.is_finished());
        assert_eq!(seen, [PER_LANE; LANES]);
    }

    #[test]
    fn drain_while_closing_races_cleanly() {
        // A producer that closes mid-stream: the consumer must see every
        // command sent before the close, then observe the lane finished.
        let (mut txs, mut rx) = mailbox::<u64>(1, 8);
        let mut tx = txs.pop().unwrap();
        let producer = std::thread::spawn(move || {
            let mut backoff = Backoff::new();
            for i in 0..1_000u64 {
                let mut cmd = i;
                while let Err(MailboxFull(v)) = tx.send(cmd) {
                    cmd = v;
                    backoff.snooze();
                }
            }
            // tx dropped here -> lane closes.
        });
        let mut expected = 0u64;
        let mut backoff = Backoff::new();
        loop {
            match rx.try_recv() {
                Some(v) => {
                    assert_eq!(v, expected);
                    expected += 1;
                    backoff.reset();
                }
                None => {
                    if rx.is_finished() {
                        break;
                    }
                    backoff.snooze();
                }
            }
        }
        producer.join().unwrap();
        assert_eq!(expected, 1_000);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_panics() {
        let _ = mailbox::<u8>(0, 4);
    }
}
