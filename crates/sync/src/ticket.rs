//! A FIFO ticket spinlock.
//!
//! The simplest of the "lock-free algorithm" family the paper selects for
//! WCET analysability (§3.5, citing Mellor-Crummey & Scott): acquisition
//! order is the ticket order, so waiting time is bounded by the number of
//! earlier tickets — exactly the property a static timing analysis needs.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// A FIFO spinlock protecting a value of type `T`.
///
/// # Examples
///
/// ```
/// use yasmin_sync::ticket::TicketLock;
///
/// let lock = TicketLock::new(0u64);
/// *lock.lock() += 1;
/// assert_eq!(*lock.lock(), 1);
/// ```
#[derive(Debug)]
pub struct TicketLock<T> {
    next_ticket: AtomicU64,
    now_serving: AtomicU64,
    data: UnsafeCell<T>,
}

// SAFETY: the ticket protocol guarantees mutual exclusion, so `&TicketLock`
// may be shared across threads whenever `T: Send`.
unsafe impl<T: Send> Sync for TicketLock<T> {}
unsafe impl<T: Send> Send for TicketLock<T> {}

impl<T> TicketLock<T> {
    /// Creates a lock around `value`.
    #[must_use]
    pub const fn new(value: T) -> Self {
        TicketLock {
            next_ticket: AtomicU64::new(0),
            now_serving: AtomicU64::new(0),
            data: UnsafeCell::new(value),
        }
    }

    /// Acquires the lock, spinning in ticket order.
    ///
    /// The wait backs off from pure spinning to `yield_now` so that,
    /// under the default time-sharing policies, a waiter does not burn
    /// its whole timeslice starving the holder on hosts with fewer
    /// cores than contenders. (Under `SCHED_FIFO`, `yield_now` only
    /// rotates within the same priority level; priority assignment
    /// must keep holder and waiters comparable.)
    pub fn lock(&self) -> TicketGuard<'_, T> {
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        let mut backoff = crate::wait::Backoff::new();
        while self.now_serving.load(Ordering::Acquire) != ticket {
            backoff.snooze();
        }
        TicketGuard { lock: self }
    }

    /// Tries to acquire the lock without waiting.
    pub fn try_lock(&self) -> Option<TicketGuard<'_, T>> {
        let serving = self.now_serving.load(Ordering::Acquire);
        // Only take a ticket if it would be served immediately.
        if self
            .next_ticket
            .compare_exchange(serving, serving + 1, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            Some(TicketGuard { lock: self })
        } else {
            None
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

/// RAII guard for [`TicketLock`]; releases on drop.
#[derive(Debug)]
pub struct TicketGuard<'a, T> {
    lock: &'a TicketLock<T>,
}

impl<T> std::ops::Deref for TicketGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard proves exclusive ownership of the lock.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> std::ops::DerefMut for TicketGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the guard proves exclusive ownership of the lock.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for TicketGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.now_serving.fetch_add(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutual_exclusion_under_contention() {
        let lock = Arc::new(TicketLock::new(0u64));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        *lock.lock() += 1;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*lock.lock(), 80_000);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let lock = TicketLock::new(());
        let g = lock.lock();
        assert!(lock.try_lock().is_none());
        drop(g);
        assert!(lock.try_lock().is_some());
    }

    #[test]
    fn into_inner_returns_value() {
        let lock = TicketLock::new(vec![1, 2, 3]);
        *lock.lock() = vec![9];
        assert_eq!(lock.into_inner(), vec![9]);
    }
}
