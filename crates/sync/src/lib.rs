//! # yasmin-sync
//!
//! Synchronisation substrate for the YASMIN middleware (§3.5 of Rouxel,
//! Altmeyer & Grelck, Middleware 2021):
//!
//! * [`ticket`] — FIFO ticket spinlock;
//! * [`mcs`] — Mellor-Crummey & Scott queue lock (the paper's "lock-free
//!   algorithms from \[27\]" option);
//! * [`lock`] — [`lock::YasminLock`], run-time selectable between the
//!   POSIX-backed and the lock-free implementation;
//! * [`pip`] — a priority-tracking mutex for the Priority Inheritance
//!   Protocol applied on accelerator contention (§3.2);
//! * [`barrier`] — sense-reversing spin barrier;
//! * [`spsc`] — bounded wait-free SPSC FIFO ring backing the task
//!   channels;
//! * [`mod@mailbox`] — lock-free MPSC command mailbox (one SPSC lane
//!   per producer, single owner) feeding the sharded per-worker
//!   scheduler;
//! * [`steal`] — the advisory [`steal::LoadBoard`] work-stealing
//!   thieves probe before sending a steal request over the mailbox's
//!   per-peer request/response lanes;
//! * [`wait`] — sleep vs spin waiting strategies.
//!
//! This is the only crate in the workspace that uses `unsafe` code; every
//! unsafe block carries its justification, and the stress tests exercise
//! mutual exclusion and FIFO invariants under real contention.

#![warn(missing_docs)]

pub mod barrier;
pub mod lock;
pub mod mailbox;
pub mod mcs;
pub mod pip;
pub mod spsc;
pub mod steal;
pub mod ticket;
pub mod wait;

pub use barrier::SpinBarrier;
pub use lock::{LockKind, YasminLock};
pub use mailbox::{mailbox, MailboxFull, MailboxReceiver, MailboxSender};
pub use mcs::McsLock;
pub use pip::PipMutex;
pub use spsc::{channel as spsc_channel, Consumer, Producer};
pub use steal::LoadBoard;
pub use ticket::TicketLock;
pub use wait::{wait_for, wait_until, WaitMode};
