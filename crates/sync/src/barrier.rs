//! A sense-reversing spin barrier.
//!
//! Part of the "synchronisation primitives, i.e. mutex locks and barriers"
//! YASMIN implements internally (§3.5). The sense-reversing construction
//! (Mellor-Crummey & Scott 1991, alg. 7) reuses a single barrier object
//! across episodes without re-initialisation, and every participant spins
//! on one shared word flipped once per episode — bounded and analysable.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

#[derive(Debug)]
struct Shared {
    count: AtomicUsize,
    sense: AtomicBool,
    participants: usize,
}

/// One participant's handle to a sense-reversing barrier.
///
/// Handles are created together via [`SpinBarrier::new`] and distributed
/// to the participating threads; each carries its private local sense.
///
/// # Examples
///
/// ```
/// use yasmin_sync::barrier::SpinBarrier;
///
/// let mut handles = SpinBarrier::new(2);
/// let mut other = handles.pop().unwrap();
/// let t = std::thread::spawn(move || {
///     other.wait();
/// });
/// handles[0].wait();
/// t.join().unwrap();
/// ```
#[derive(Debug)]
pub struct SpinBarrier {
    shared: Arc<Shared>,
    local_sense: bool,
}

impl SpinBarrier {
    /// Creates `participants` linked handles.
    ///
    /// # Panics
    ///
    /// Panics if `participants` is zero.
    #[must_use]
    pub fn new(participants: usize) -> Vec<SpinBarrier> {
        assert!(participants > 0, "a barrier needs at least one participant");
        let shared = Arc::new(Shared {
            count: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
            participants,
        });
        (0..participants)
            .map(|_| SpinBarrier {
                shared: Arc::clone(&shared),
                local_sense: false,
            })
            .collect()
    }

    /// Blocks (spinning) until all participants have called `wait` for the
    /// current episode. Returns `true` for exactly one participant per
    /// episode (the last to arrive), mirroring
    /// [`std::sync::Barrier::wait`]'s leader flag.
    pub fn wait(&mut self) -> bool {
        self.local_sense = !self.local_sense;
        let arrived = self.shared.count.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == self.shared.participants {
            self.shared.count.store(0, Ordering::Relaxed);
            self.shared.sense.store(self.local_sense, Ordering::Release);
            true
        } else {
            let mut backoff = crate::wait::Backoff::new();
            while self.shared.sense.load(Ordering::Acquire) != self.local_sense {
                backoff.snooze();
            }
            false
        }
    }

    /// Number of participants.
    #[must_use]
    pub fn participants(&self) -> usize {
        self.shared.participants
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn single_participant_never_blocks() {
        let mut h = SpinBarrier::new(1);
        assert!(h[0].wait());
        assert!(h[0].wait());
    }

    #[test]
    fn synchronises_phases() {
        const THREADS: usize = 4;
        const EPISODES: usize = 200;
        let phase = Arc::new(AtomicUsize::new(0));
        let handles = SpinBarrier::new(THREADS);
        let threads: Vec<_> = handles
            .into_iter()
            .map(|mut h| {
                let phase = Arc::clone(&phase);
                std::thread::spawn(move || {
                    for episode in 0..EPISODES {
                        // Everyone must observe the phase of this episode,
                        // proving nobody raced ahead through the barrier.
                        assert_eq!(phase.load(Ordering::SeqCst), episode);
                        if h.wait() {
                            phase.fetch_add(1, Ordering::SeqCst);
                        }
                        h.wait();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(phase.load(Ordering::SeqCst), EPISODES);
    }

    #[test]
    fn exactly_one_leader_per_episode() {
        const THREADS: usize = 8;
        let leaders = Arc::new(AtomicUsize::new(0));
        let handles = SpinBarrier::new(THREADS);
        let threads: Vec<_> = handles
            .into_iter()
            .map(|mut h| {
                let leaders = Arc::clone(&leaders);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        if h.wait() {
                            leaders.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(leaders.load(Ordering::SeqCst), 100);
    }

    #[test]
    #[should_panic(expected = "participant")]
    fn zero_participants_panics() {
        let _ = SpinBarrier::new(0);
    }
}
