//! # yasmin-baselines
//!
//! The comparison systems of the YASMIN evaluation:
//!
//! * [`mollison`] — a faithful model of Mollison & Anderson's userspace
//!   G-EDF library (the Figure 2 baseline): global TAS-locked ready
//!   queue, O(n) release scanning, per-job allocation, no dedicated
//!   scheduler core — measured with real threads;
//! * [`cyclictest`] — the Table 2 latency measurement: a real host loop,
//!   measured engine overhead, and the calibrated per-kernel simulation;
//! * [`stress`] — real stressor threads mirroring
//!   `stress-ng -C 8 -c 8 -T 8 -y 8`.

#![warn(missing_docs)]

pub mod cyclictest;
pub mod mollison;
pub mod stress;

pub use cyclictest::{measure_engine_overhead, run_real, simulate, CyclictestConfig, Variant};
pub use mollison::{measure_overhead, MollisonOverhead, MollisonParams};
pub use stress::StressRunner;
