//! Real stressor threads — the stress-ng analogue (§4.2).
//!
//! `stress-ng -C 8 -c 8 -T 8 -y 8` spawns cache-thrashing, CPU, timer and
//! `sched_yield` stressors. [`StressRunner`] spawns the same mix as plain
//! threads so real-machine latency measurements (cyclictest, Table 2) run
//! under comparable interference. The *simulated* counterpart is
//! `yasmin_sim::StressProfile`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use yasmin_sim::StressProfile;

/// Running stressor threads; stops and joins on [`StressRunner::stop`] or
/// drop.
#[derive(Debug)]
pub struct StressRunner {
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
    /// Total iterations executed across stressors (a liveness indicator).
    iterations: Arc<AtomicU64>,
}

impl StressRunner {
    /// Spawns the stressor mix described by `profile`.
    #[must_use]
    pub fn spawn(profile: StressProfile) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let iterations = Arc::new(AtomicU64::new(0));
        let mut threads = Vec::new();

        for _ in 0..profile.cache {
            let stop = Arc::clone(&stop);
            let iters = Arc::clone(&iterations);
            threads.push(std::thread::spawn(move || cache_stressor(&stop, &iters)));
        }
        for _ in 0..profile.cpu {
            let stop = Arc::clone(&stop);
            let iters = Arc::clone(&iterations);
            threads.push(std::thread::spawn(move || cpu_stressor(&stop, &iters)));
        }
        for _ in 0..profile.timer {
            let stop = Arc::clone(&stop);
            let iters = Arc::clone(&iterations);
            threads.push(std::thread::spawn(move || timer_stressor(&stop, &iters)));
        }
        for _ in 0..profile.yield_ {
            let stop = Arc::clone(&stop);
            let iters = Arc::clone(&iterations);
            threads.push(std::thread::spawn(move || yield_stressor(&stop, &iters)));
        }

        StressRunner {
            stop,
            threads,
            iterations,
        }
    }

    /// Iterations executed so far across all stressors.
    #[must_use]
    pub fn iterations(&self) -> u64 {
        self.iterations.load(Ordering::Relaxed)
    }

    /// Number of stressor threads running.
    #[must_use]
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Stops and joins all stressors.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for StressRunner {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// Walks a 4 MiB buffer with a large stride to defeat the cache
/// (stress-ng's `-C`).
fn cache_stressor(stop: &AtomicBool, iters: &AtomicU64) {
    const SIZE: usize = 4 * 1024 * 1024;
    const STRIDE: usize = 4099; // prime, larger than a cache line
    let mut buf = vec![0u8; SIZE];
    let mut idx = 0usize;
    while !stop.load(Ordering::Relaxed) {
        for _ in 0..1024 {
            idx = (idx + STRIDE) % SIZE;
            buf[idx] = buf[idx].wrapping_add(1);
        }
        iters.fetch_add(1, Ordering::Relaxed);
    }
    std::hint::black_box(&buf);
}

/// Integer arithmetic loop (stress-ng's `-c`).
fn cpu_stressor(stop: &AtomicBool, iters: &AtomicU64) {
    let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
    while !stop.load(Ordering::Relaxed) {
        for _ in 0..4096 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x ^= x >> 29;
        }
        std::hint::black_box(x);
        iters.fetch_add(1, Ordering::Relaxed);
    }
}

/// Frequent short sleeps generating timer traffic (stress-ng's `-T`).
fn timer_stressor(stop: &AtomicBool, iters: &AtomicU64) {
    while !stop.load(Ordering::Relaxed) {
        std::thread::sleep(std::time::Duration::from_micros(200));
        iters.fetch_add(1, Ordering::Relaxed);
    }
}

/// Scheduler churn via `yield` (stress-ng's `-y`).
fn yield_stressor(stop: &AtomicBool, iters: &AtomicU64) {
    while !stop.load(Ordering::Relaxed) {
        std::thread::yield_now();
        iters.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawns_and_stops_the_mix() {
        let profile = StressProfile {
            cache: 1,
            cpu: 1,
            timer: 1,
            yield_: 1,
        };
        let runner = StressRunner::spawn(profile);
        assert_eq!(runner.thread_count(), 4);
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(runner.iterations() > 0, "stressors made no progress");
        runner.stop();
    }

    #[test]
    fn idle_profile_spawns_nothing() {
        let runner = StressRunner::spawn(StressProfile::IDLE);
        assert_eq!(runner.thread_count(), 0);
        runner.stop();
    }

    #[test]
    fn drop_joins() {
        let runner = StressRunner::spawn(StressProfile {
            cache: 0,
            cpu: 2,
            timer: 0,
            yield_: 0,
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        drop(runner); // must not hang
    }
}
