//! cyclictest — the response-latency measurement of §4.2 / Table 2.
//!
//! The paper invokes `cyclictest -t 6 -d 0 -i 10000 -m -l 10000`:
//! 6 threads woken every 10 ms, 10 000 activations, memory locked,
//! under stress-ng interference. It compares the stock tool ("RTapps")
//! against a YASMIN-managed variant on Linux+PREEMPT_RT and LitmusRT.
//!
//! Three layers here:
//!
//! * [`run_real`] — an actual cyclictest loop on the host (threads +
//!   absolute sleeps), used by examples and smoke tests;
//! * [`measure_engine_overhead`] — wall-clock-times the *real* YASMIN
//!   engine handling a cyclictest-shaped task set, producing the
//!   middleware-cost distribution;
//! * [`simulate`] — regenerates a Table 2 row: kernel wake-up latency
//!   from the calibrated kernel model, plus (for the YASMIN variant) the
//!   measured engine cost and a calibrated dispatch-path term.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;
use yasmin_core::config::Config;
use yasmin_core::graph::TaskSetBuilder;
use yasmin_core::priority::PriorityPolicy;
use yasmin_core::stats::{Samples, Summary};
use yasmin_core::task::TaskSpec;
use yasmin_core::time::{Duration, Instant};
use yasmin_core::version::VersionSpec;
use yasmin_core::WorkerId;
use yasmin_sched::{Action, ActionSink, OnlineEngine};
use yasmin_sim::{KernelKind, KernelModel};

/// Configuration mirroring the paper's cyclictest invocation.
#[derive(Clone, Copy, Debug)]
pub struct CyclictestConfig {
    /// `-t`: measurement threads.
    pub threads: usize,
    /// `-i`: activation interval.
    pub interval: Duration,
    /// `-l`: activations per thread.
    pub loops: usize,
}

impl Default for CyclictestConfig {
    fn default() -> Self {
        // -t 6 -i 10000 (µs) -l 10000
        CyclictestConfig {
            threads: 6,
            interval: Duration::from_millis(10),
            loops: 10_000,
        }
    }
}

/// Which cyclictest variant a row measures.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Variant {
    /// The stock tool: threads woken directly by the kernel ("RTapps" /
    /// the litmus-shipped versions).
    Native,
    /// Threads managed by YASMIN: the scheduler thread relays wake-ups.
    Yasmin,
}

impl Variant {
    /// Row label as in Table 2.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Variant::Native => "RTapps",
            Variant::Yasmin => "YASMIN",
        }
    }
}

/// Calibrated middleware-path parameters per kernel (see module docs —
/// the deltas of Table 2 between the YASMIN and native rows).
#[derive(Clone, Copy, Debug)]
struct YasminPathParams {
    /// Probability the scheduler thread is already awake at the timer
    /// edge (its gcd tick matches the 10 ms interval), bypassing the
    /// kernel wake-up.
    fast_path_prob: f64,
    /// Latency bounds (µs) of that fast path.
    fast_path_us: (f64, f64),
    /// Fixed signal/dispatch cost added on the normal path.
    base_us: f64,
    /// Uniform spread on top of the fixed cost.
    spread_us: f64,
}

fn yasmin_path(kernel: KernelKind) -> YasminPathParams {
    match kernel {
        KernelKind::PreemptRt => YasminPathParams {
            fast_path_prob: 0.10,
            fast_path_us: (80.0, 150.0),
            base_us: 75.0,
            spread_us: 20.0,
        },
        KernelKind::LitmusGsnEdf | KernelKind::LitmusPres => YasminPathParams {
            fast_path_prob: 0.0,
            fast_path_us: (0.0, 0.0),
            base_us: 34.0,
            spread_us: 90.0,
        },
        KernelKind::VanillaLinux => YasminPathParams {
            fast_path_prob: 0.05,
            fast_path_us: (100.0, 300.0),
            base_us: 80.0,
            spread_us: 80.0,
        },
    }
}

/// Builds the cyclictest-shaped task set (`threads` periodic tasks with
/// the given interval) and wall-clock-times the real scheduling engine
/// processing `iterations` tick/completion rounds. The returned samples
/// (nanoseconds per engine call) are the middleware's measured cost.
///
/// # Panics
///
/// Panics on invalid configurations (zero threads).
#[must_use]
pub fn measure_engine_overhead(cfg: &CyclictestConfig, iterations: usize) -> Samples {
    assert!(cfg.threads > 0, "need at least one thread");
    let mut b = TaskSetBuilder::new();
    for i in 0..cfg.threads {
        let t = b
            .task_decl(TaskSpec::periodic(format!("cyclic{i}"), cfg.interval))
            .unwrap();
        b.version_decl(t, VersionSpec::new("v", Duration::from_micros(50)))
            .unwrap();
    }
    let ts = Arc::new(b.build().unwrap());
    let config = Config::builder()
        .workers(cfg.threads)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .build()
        .unwrap();
    let mut engine = OnlineEngine::new(ts, config).unwrap();
    let mut samples = Samples::with_capacity(iterations * 2);

    let mut now = Instant::ZERO;
    let mut sink = ActionSink::with_capacity(256);
    let t0 = std::time::Instant::now();
    engine.start_into(now, &mut sink).unwrap();
    samples.record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
    let mut running: Vec<(WorkerId, yasmin_core::JobId)> = sink
        .as_slice()
        .iter()
        .filter_map(|a| match a {
            Action::Dispatch { worker, job, .. } => Some((*worker, job.id)),
            _ => None,
        })
        .collect();

    for _ in 0..iterations {
        // Complete everything running, then tick the next period.
        for (w, j) in running.drain(..) {
            sink.clear();
            let t0 = std::time::Instant::now();
            let _ = engine.on_job_completed_into(w, j, now + Duration::from_micros(100), &mut sink);
            samples.record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        now += cfg.interval;
        sink.clear();
        let t0 = std::time::Instant::now();
        engine.on_tick_into(now, &mut sink);
        samples.record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        running = sink
            .as_slice()
            .iter()
            .filter_map(|a| match a {
                Action::Dispatch { worker, job, .. } => Some((*worker, job.id)),
                _ => None,
            })
            .collect();
    }
    samples
}

/// Regenerates one Table 2 measurement: `threads × loops` wake-up
/// latencies under `kernel` at `stress` intensity. For the YASMIN
/// variant the measured `engine_cost` samples and the calibrated
/// dispatch-path terms are added on top of the kernel wake-up.
#[must_use]
pub fn simulate(
    kernel: KernelKind,
    variant: Variant,
    cfg: &CyclictestConfig,
    stress: f64,
    engine_cost: &Samples,
    seed: u64,
) -> Summary {
    let mut model = KernelModel::new(kernel, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC1C1);
    let path = yasmin_path(kernel);
    let total = cfg.threads * cfg.loops;
    let mut out = Summary::new();
    for _ in 0..total {
        let kernel_wake = model.sample_latency(stress);
        let latency_ns = match variant {
            Variant::Native => kernel_wake.as_nanos(),
            Variant::Yasmin => {
                let wake_ns = if path.fast_path_prob > 0.0
                    && rng.random_range(0.0..1.0) < path.fast_path_prob
                {
                    let us: f64 = rng.random_range(path.fast_path_us.0..=path.fast_path_us.1);
                    (us * 1_000.0) as u64
                } else {
                    let extra: f64 = if path.spread_us > 0.0 {
                        rng.random_range(0.0..path.spread_us)
                    } else {
                        0.0
                    };
                    kernel_wake.as_nanos() + ((path.base_us + extra) * 1_000.0) as u64
                };
                let engine_ns = if engine_cost.is_empty() {
                    0
                } else {
                    let idx = rng.random_range(0..engine_cost.count());
                    engine_cost.values()[idx]
                };
                wake_ns + engine_ns
            }
        };
        out.record(latency_ns);
    }
    out
}

/// Runs a *real* cyclictest loop on the host: `threads` threads, each
/// sleeping to an absolute next-period instant and recording its wake-up
/// lateness. This is the "RTapps" analogue for whatever kernel this host
/// runs; YASMIN-managed measurement lives in `yasmin-rt`.
#[must_use]
pub fn run_real(cfg: &CyclictestConfig) -> Summary {
    let handles: Vec<_> = (0..cfg.threads)
        .map(|_| {
            let loops = cfg.loops;
            let interval: std::time::Duration = cfg.interval.into();
            std::thread::spawn(move || {
                let mut s = Summary::new();
                let mut next = std::time::Instant::now() + interval;
                for _ in 0..loops {
                    let late =
                        yasmin_sync::wait::wait_until(yasmin_sync::wait::WaitMode::Sleep, next);
                    s.record(u64::try_from(late.as_nanos()).unwrap_or(u64::MAX));
                    next += interval;
                }
                s
            })
        })
        .collect();
    let mut total = Summary::new();
    for h in handles {
        total.merge(&h.join().expect("cyclictest thread panicked"));
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> CyclictestConfig {
        CyclictestConfig {
            threads: 6,
            interval: Duration::from_millis(10),
            loops: 2_000,
        }
    }

    #[test]
    fn engine_overhead_measured() {
        let s = measure_engine_overhead(&small_cfg(), 200);
        assert!(s.count() >= 200);
        // Engine calls on this machine are well under a millisecond.
        assert!(s.mean().unwrap() < 1_000_000.0);
    }

    #[test]
    fn native_rows_match_kernel_models() {
        let engine = Samples::new();
        let rt = simulate(
            KernelKind::PreemptRt,
            Variant::Native,
            &small_cfg(),
            1.0,
            &engine,
            1,
        );
        let (min, max, avg) = rt.as_micros_triple();
        assert!((100.0..300.0).contains(&min), "min {min}");
        assert!((700.0..2_500.0).contains(&max), "max {max}");
        assert!((300.0..650.0).contains(&avg), "avg {avg}");
    }

    #[test]
    fn yasmin_adds_overhead_on_litmus() {
        let engine = measure_engine_overhead(&small_cfg(), 100);
        let native = simulate(
            KernelKind::LitmusGsnEdf,
            Variant::Native,
            &small_cfg(),
            1.0,
            &engine,
            2,
        );
        let yasmin = simulate(
            KernelKind::LitmusGsnEdf,
            Variant::Yasmin,
            &small_cfg(),
            1.0,
            &engine,
            2,
        );
        assert!(
            yasmin.mean().unwrap() > native.mean().unwrap(),
            "middleware must cost something on LitmusRT"
        );
        // Paper's YASMIN row: <67, 318, 170> µs; check the decade.
        let (min, _max, avg) = yasmin.as_micros_triple();
        assert!((50.0..120.0).contains(&min), "min {min}");
        assert!((100.0..260.0).contains(&avg), "avg {avg}");
    }

    #[test]
    fn yasmin_fast_path_lowers_min_on_preempt_rt() {
        let engine = Samples::new();
        let native = simulate(
            KernelKind::PreemptRt,
            Variant::Native,
            &small_cfg(),
            1.0,
            &engine,
            3,
        );
        let yasmin = simulate(
            KernelKind::PreemptRt,
            Variant::Yasmin,
            &small_cfg(),
            1.0,
            &engine,
            3,
        );
        // Paper: YASMIN min (90) < RTapps min (176) on PREEMPT_RT.
        assert!(yasmin.min().unwrap() < native.min().unwrap());
        // ... while the average is slightly higher (500 vs 463).
        assert!(yasmin.mean().unwrap() > native.mean().unwrap());
    }

    #[test]
    fn pres_dominates_everything() {
        let engine = Samples::new();
        let pres = simulate(
            KernelKind::LitmusPres,
            Variant::Native,
            &small_cfg(),
            1.0,
            &engine,
            4,
        );
        let (min, _, avg) = pres.as_micros_triple();
        assert!(min > 900.0, "min {min}");
        assert!(avg > 950.0, "avg {avg}");
    }

    #[test]
    fn real_loop_smoke() {
        let cfg = CyclictestConfig {
            threads: 2,
            interval: Duration::from_millis(2),
            loops: 20,
        };
        let s = run_real(&cfg);
        assert_eq!(s.count(), 40);
        // Lateness is non-negative and this host should stay under 1s.
        assert!(s.max().unwrap() < 1_000_000_000);
    }
}
