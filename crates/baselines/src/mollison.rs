//! A faithful model of Mollison & Anderson's userspace G-EDF library
//! (RTAS 2013), the Figure 2 baseline.
//!
//! Architectural differences from YASMIN that the paper calls out (§4.1,
//! §6) and that this model reproduces with *real* data structures and
//! *real* thread contention:
//!
//! * **no dedicated scheduler core** — every worker performs scheduling
//!   work at its own job boundaries;
//! * **a global ready queue shared among all workers**, protected by a
//!   test-and-set spinlock;
//! * **O(n) release scanning** — at each boundary the worker checks every
//!   task for due releases;
//! * **dynamic allocation** — each released job is heap-allocated
//!   ("the implementation provided by the authors extensively use\[s\]
//!   dynamic allocation which leads to hazard when estimating the WCET").
//!
//! [`measure_overhead`] spawns the requested number of worker threads and
//! wall-clock-times every scheduler interaction, yielding the per-op
//! average/maximum Figure 2 plots against YASMIN's measured engine cost.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant as StdInstant};
use yasmin_core::stats::Samples;
use yasmin_taskgen::GeneratedTask;

/// A released job in the baseline's global queue. Boxed on purpose: the
/// original library allocates per job.
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct MaJob {
    abs_deadline_ns: u64,
    #[allow(dead_code)]
    task: usize,
    /// Virtual execution demand (already compressed).
    exec_ns: u64,
}

struct Inner {
    heap: BinaryHeap<Reverse<(u64, u64, Box<MaJob>)>>,
    next_release_ns: Vec<u64>,
    period_ns: Vec<u64>,
    deadline_ns: Vec<u64>,
    exec_ns: Vec<u64>,
    seq: u64,
}

/// The shared library state: a test-and-set lock around everything, as in
/// the original.
struct MaShared {
    tas: AtomicBool,
    inner: std::cell::UnsafeCell<Inner>,
    epoch: StdInstant,
    time_scale: u64,
    stop: AtomicBool,
}

// SAFETY: `inner` is only touched while `tas` is held (acquire/release
// spinlock below) — mutual exclusion by construction.
unsafe impl Sync for MaShared {}
unsafe impl Send for MaShared {}

impl MaShared {
    fn lock(&self) {
        while self
            .tas
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            std::hint::spin_loop();
        }
    }

    fn unlock(&self) {
        self.tas.store(false, Ordering::Release);
    }

    fn virt_now_ns(&self) -> u64 {
        let real = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        real.saturating_mul(self.time_scale)
    }
}

/// Parameters of an overhead trial.
#[derive(Clone, Copy, Debug)]
pub struct MollisonParams {
    /// Worker threads (the paper uses 2 and 3 big cores).
    pub workers: usize,
    /// Virtual-time compression: virtual nanoseconds per real nanosecond.
    /// 50 means a 10 ms period fires every 200 µs of wall time, so a
    /// short trial observes thousands of scheduling events.
    pub time_scale: u64,
    /// Wall-clock duration of the trial.
    pub trial: StdDuration,
}

impl Default for MollisonParams {
    fn default() -> Self {
        MollisonParams {
            workers: 2,
            time_scale: 50,
            trial: StdDuration::from_millis(120),
        }
    }
}

/// Measured overhead of the baseline library.
#[derive(Debug)]
pub struct MollisonOverhead {
    /// Wall-clock nanoseconds of each scheduler interaction (lock +
    /// release scan + queue ops + unlock).
    pub per_op_ns: Samples,
    /// Jobs actually executed during the trial.
    pub jobs_run: u64,
}

/// Runs worker threads against the shared G-EDF structure built from
/// `tasks` and measures every scheduler interaction.
///
/// # Panics
///
/// Panics if `tasks` is empty or `params.workers == 0`.
#[must_use]
pub fn measure_overhead(tasks: &[GeneratedTask], params: &MollisonParams) -> MollisonOverhead {
    assert!(!tasks.is_empty(), "need tasks");
    assert!(params.workers > 0, "need workers");
    let inner = Inner {
        heap: BinaryHeap::new(),
        next_release_ns: vec![0; tasks.len()],
        period_ns: tasks.iter().map(|t| t.period.as_nanos()).collect(),
        deadline_ns: tasks.iter().map(|t| t.period.as_nanos()).collect(),
        exec_ns: tasks.iter().map(|t| t.wcet.as_nanos()).collect(),
        seq: 0,
    };
    let shared = Arc::new(MaShared {
        tas: AtomicBool::new(false),
        inner: std::cell::UnsafeCell::new(inner),
        epoch: StdInstant::now(),
        time_scale: params.time_scale.max(1),
        stop: AtomicBool::new(false),
    });

    let handles: Vec<_> = (0..params.workers)
        .map(|_| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || worker_loop(&shared))
        })
        .collect();

    std::thread::sleep(params.trial);
    shared.stop.store(true, Ordering::SeqCst);

    let mut per_op_ns = Samples::new();
    let mut jobs_run = 0;
    for h in handles {
        let (samples, jobs) = h.join().expect("worker panicked");
        for v in samples.values() {
            per_op_ns.record(*v);
        }
        jobs_run += jobs;
    }
    MollisonOverhead {
        per_op_ns,
        jobs_run,
    }
}

fn worker_loop(shared: &MaShared) -> (Samples, u64) {
    let mut samples = Samples::with_capacity(4096);
    let mut jobs_run = 0u64;
    while !shared.stop.load(Ordering::Relaxed) {
        let t0 = StdInstant::now();
        shared.lock();
        // SAFETY: protected by the TAS lock.
        let inner = unsafe { &mut *shared.inner.get() };
        let now = shared.virt_now_ns();
        // O(n) release scan with per-job allocation — the library's
        // signature overhead source.
        for i in 0..inner.period_ns.len() {
            while inner.next_release_ns[i] <= now {
                let deadline = inner.next_release_ns[i] + inner.deadline_ns[i];
                inner.seq += 1;
                let job = Box::new(MaJob {
                    abs_deadline_ns: deadline,
                    task: i,
                    exec_ns: inner.exec_ns[i] / shared.time_scale.max(1),
                });
                inner
                    .heap
                    .push(Reverse((job.abs_deadline_ns, inner.seq, job)));
                inner.next_release_ns[i] += inner.period_ns[i];
            }
        }
        let job = inner.heap.pop();
        shared.unlock();
        samples.record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));

        match job {
            Some(Reverse((_, _, j))) => {
                jobs_run += 1;
                // "a simple function that iterates to reach a pre-defined
                // WCET" (§4.1) — compressed and capped so trials stay
                // short.
                let spin = StdDuration::from_nanos(j.exec_ns.min(200_000));
                let end = StdInstant::now() + spin;
                while StdInstant::now() < end {
                    std::hint::spin_loop();
                }
            }
            None => {
                // Idle: brief pause before re-checking, as the library's
                // idle loop does.
                let end = StdInstant::now() + StdDuration::from_micros(5);
                while StdInstant::now() < end {
                    std::hint::spin_loop();
                }
            }
        }
    }
    (samples, jobs_run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use yasmin_core::time::Duration;

    fn tasks(n: usize) -> Vec<GeneratedTask> {
        (0..n)
            .map(|i| GeneratedTask {
                name: format!("t{i}"),
                utilisation: 0.01,
                period: Duration::from_millis(10 + (i as u64 % 7) * 5),
                wcet: Duration::from_micros(100),
            })
            .collect()
    }

    #[test]
    fn trial_collects_samples() {
        let p = MollisonParams {
            workers: 2,
            time_scale: 50,
            trial: StdDuration::from_millis(60),
        };
        let r = measure_overhead(&tasks(20), &p);
        assert!(r.per_op_ns.count() > 50, "ops = {}", r.per_op_ns.count());
        assert!(r.jobs_run > 10, "jobs = {}", r.jobs_run);
        assert!(r.per_op_ns.max().unwrap() > 0);
    }

    #[test]
    fn overhead_grows_with_task_count() {
        // The O(n) release scan must show up: 300 tasks cost more per op
        // than 5 tasks. Medians + a retry keep the wall-clock comparison
        // stable when the test host is itself under load.
        let p = MollisonParams {
            workers: 2,
            time_scale: 20,
            trial: StdDuration::from_millis(100),
        };
        for attempt in 0..3 {
            let mut small = measure_overhead(&tasks(5), &p);
            let mut large = measure_overhead(&tasks(300), &p);
            let a = small.per_op_ns.percentile(50).unwrap();
            let b = large.per_op_ns.percentile(50).unwrap();
            if b > a {
                return;
            }
            assert!(attempt < 2, "expected growth: median {a} -> {b}");
        }
    }

    #[test]
    #[should_panic(expected = "need tasks")]
    fn empty_tasks_panics() {
        let _ = measure_overhead(&[], &MollisonParams::default());
    }
}
