//! FIFO channel declarations connecting causally dependent tasks.
//!
//! The paper declares channels with the `channel_decl(CID, datatype, size)`
//! macro and wires them with `channel_connect(src, dst, CID)` (§3.1). A
//! channel of capacity zero expresses a pure precedence dependency without
//! data exchange (Listing 2 line 3).
//!
//! This module holds the *static description*; the executable typed FIFO
//! lives in `yasmin-rt`, and the simulator tracks channel occupancy as
//! token counts.

use crate::ids::{ChannelId, TaskId};

/// Static description of a FIFO channel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChannelSpec {
    id: ChannelId,
    name: String,
    capacity: usize,
    elem_bytes: usize,
}

impl ChannelSpec {
    /// Creates a channel holding up to `capacity` items of `elem_bytes`
    /// each. A zero capacity declares a dependency without data exchange.
    #[must_use]
    pub fn new(id: ChannelId, name: impl Into<String>, capacity: usize, elem_bytes: usize) -> Self {
        ChannelSpec {
            id,
            name: name.into(),
            capacity,
            elem_bytes,
        }
    }

    /// The channel identifier.
    #[must_use]
    pub const fn id(&self) -> ChannelId {
        self.id
    }

    /// The channel name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Maximum number of buffered items (0 = precedence only).
    #[must_use]
    pub const fn capacity(&self) -> usize {
        self.capacity
    }

    /// Size of one item in bytes.
    #[must_use]
    pub const fn elem_bytes(&self) -> usize {
        self.elem_bytes
    }

    /// `true` if the channel only expresses precedence (capacity 0).
    #[must_use]
    pub const fn is_precedence_only(&self) -> bool {
        self.capacity == 0
    }

    /// Total buffer footprint in bytes.
    #[must_use]
    pub const fn buffer_bytes(&self) -> usize {
        self.capacity * self.elem_bytes
    }
}

/// A directed connection `src → dst` over a channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Producing task.
    pub src: TaskId,
    /// Consuming task.
    pub dst: TaskId,
    /// The channel carrying the data (or the precedence token).
    pub channel: ChannelId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_spec_fields() {
        let c = ChannelSpec::new(ChannelId::new(2), "rj", 2, 4);
        assert_eq!(c.id(), ChannelId::new(2));
        assert_eq!(c.name(), "rj");
        assert_eq!(c.capacity(), 2);
        assert_eq!(c.elem_bytes(), 4);
        assert_eq!(c.buffer_bytes(), 8);
        assert!(!c.is_precedence_only());
    }

    #[test]
    fn zero_capacity_is_precedence_only() {
        let c = ChannelSpec::new(ChannelId::new(0), "fl", 0, 1);
        assert!(c.is_precedence_only());
        assert_eq!(c.buffer_bytes(), 0);
    }
}
