//! FIFO channel declarations connecting causally dependent tasks.
//!
//! The paper declares channels with the `channel_decl(CID, datatype, size)`
//! macro and wires them with `channel_connect(src, dst, CID)` (§3.1). A
//! channel of capacity zero expresses a pure precedence dependency without
//! data exchange (Listing 2 line 3).
//!
//! This module holds the *static description*; the executable typed FIFO
//! lives in `yasmin-rt`, and the simulator tracks channel occupancy as
//! token counts.

use crate::ids::{ChannelId, TaskId};
use crate::priority::Priority;

/// What happens to a token posted to a channel that is already at
/// capacity (the overload-shedding policy).
///
/// The default, [`BackpressurePolicy::Reject`], preserves the historic
/// behaviour: the overflow is counted (`EngineStats::channel_overflows`)
/// and the token is still queued — producers are never blocked on the
/// hot path. The dropping policies shed load instead, bounding the
/// backlog a slow consumer can accumulate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum BackpressurePolicy {
    /// Count the overflow and keep the token (no shedding).
    #[default]
    Reject,
    /// Drop the *oldest* buffered token to make room for the new one —
    /// the right policy for telemetry lanes where only the freshest
    /// sample matters.
    DropOldest,
    /// Drop the token with the *latest* downstream release time (the one
    /// whose derived deadline is furthest away), keeping urgent work.
    DeadlineAwareDrop,
}

/// Static description of a FIFO channel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChannelSpec {
    id: ChannelId,
    name: String,
    capacity: usize,
    elem_bytes: usize,
    /// Capacity of the optional high-priority lane (0 = normal lane only).
    high_capacity: usize,
    /// Ceiling priority the consumer inherits while the high lane is
    /// non-empty (`None` = no scheduler-visible boost).
    high_ceiling: Option<Priority>,
    /// What to do with tokens that arrive while the channel is full.
    backpressure: BackpressurePolicy,
}

impl ChannelSpec {
    /// Creates a channel holding up to `capacity` items of `elem_bytes`
    /// each. A zero capacity declares a dependency without data exchange.
    #[must_use]
    pub fn new(id: ChannelId, name: impl Into<String>, capacity: usize, elem_bytes: usize) -> Self {
        ChannelSpec {
            id,
            name: name.into(),
            capacity,
            elem_bytes,
            high_capacity: 0,
            high_ceiling: None,
            backpressure: BackpressurePolicy::Reject,
        }
    }

    /// Sets the overload-shedding policy applied when a token arrives on
    /// a full channel (default [`BackpressurePolicy::Reject`]).
    #[must_use]
    pub fn with_backpressure(mut self, policy: BackpressurePolicy) -> Self {
        self.backpressure = policy;
        self
    }

    /// The overload-shedding policy for tokens arriving on a full
    /// channel.
    #[must_use]
    pub const fn backpressure(&self) -> BackpressurePolicy {
        self.backpressure
    }

    /// Adds a high-priority lane of `capacity` slots. While that lane is
    /// non-empty the consuming task's pending job inherits `ceiling`
    /// (smaller = more urgent) through the engine's PIP machinery; the
    /// boost is released when the lane drains.
    #[must_use]
    pub fn with_high_lane(mut self, capacity: usize, ceiling: Priority) -> Self {
        self.high_capacity = capacity;
        self.high_ceiling = Some(ceiling);
        self
    }

    /// Rebinds the spec to a new id (used when splicing task sets, which
    /// offsets channel ids); every other field is preserved.
    #[must_use]
    pub fn with_id(mut self, id: ChannelId) -> Self {
        self.id = id;
        self
    }

    /// Capacity of the high-priority lane (0 = no high lane).
    #[must_use]
    pub const fn high_capacity(&self) -> usize {
        self.high_capacity
    }

    /// The ceiling priority the consumer inherits while the high lane is
    /// non-empty, `None` when the channel declares no boost.
    #[must_use]
    pub const fn high_ceiling(&self) -> Option<Priority> {
        self.high_ceiling
    }

    /// `true` if the channel declares a scheduler-visible high lane.
    #[must_use]
    pub const fn has_high_lane(&self) -> bool {
        self.high_capacity > 0
    }

    /// The channel identifier.
    #[must_use]
    pub const fn id(&self) -> ChannelId {
        self.id
    }

    /// The channel name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Maximum number of buffered items (0 = precedence only).
    #[must_use]
    pub const fn capacity(&self) -> usize {
        self.capacity
    }

    /// Size of one item in bytes.
    #[must_use]
    pub const fn elem_bytes(&self) -> usize {
        self.elem_bytes
    }

    /// `true` if the channel only expresses precedence (capacity 0).
    #[must_use]
    pub const fn is_precedence_only(&self) -> bool {
        self.capacity == 0
    }

    /// Total buffer footprint in bytes.
    #[must_use]
    pub const fn buffer_bytes(&self) -> usize {
        self.capacity * self.elem_bytes
    }
}

/// A directed connection `src → dst` over a channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Producing task.
    pub src: TaskId,
    /// Consuming task.
    pub dst: TaskId,
    /// The channel carrying the data (or the precedence token).
    pub channel: ChannelId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_spec_fields() {
        let c = ChannelSpec::new(ChannelId::new(2), "rj", 2, 4);
        assert_eq!(c.id(), ChannelId::new(2));
        assert_eq!(c.name(), "rj");
        assert_eq!(c.capacity(), 2);
        assert_eq!(c.elem_bytes(), 4);
        assert_eq!(c.buffer_bytes(), 8);
        assert!(!c.is_precedence_only());
    }

    #[test]
    fn zero_capacity_is_precedence_only() {
        let c = ChannelSpec::new(ChannelId::new(0), "fl", 0, 1);
        assert!(c.is_precedence_only());
        assert_eq!(c.buffer_bytes(), 0);
    }

    #[test]
    fn high_lane_declaration_and_rebind() {
        let plain = ChannelSpec::new(ChannelId::new(1), "c", 4, 8);
        assert!(!plain.has_high_lane());
        assert_eq!(plain.high_ceiling(), None);

        let c = plain.clone().with_high_lane(2, Priority::new(5));
        assert!(c.has_high_lane());
        assert_eq!(c.high_capacity(), 2);
        assert_eq!(c.high_ceiling(), Some(Priority::new(5)));

        let moved = c.clone().with_id(ChannelId::new(9));
        assert_eq!(moved.id(), ChannelId::new(9));
        assert_eq!(moved.name(), "c");
        assert_eq!(moved.high_capacity(), 2);
        assert_eq!(moved.high_ceiling(), Some(Priority::new(5)));
    }
}
