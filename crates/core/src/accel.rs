//! Hardware accelerator declarations.
//!
//! "Hardware accelerators can be declared with `hwaccel_decl` and linked to
//! a task version with `hwaccel_use`. The scheduler is therefore aware of
//! accelerator usage, and can apply smart strategy to select a version at
//! runtime" (§3.1).

use crate::energy::Power;
use crate::ids::AccelId;

/// A declared hardware accelerator (GPU, DSP, FPGA region, …).
///
/// Accelerators are scarce, mutually exclusive resources: "there is
/// typically only 1 GPU. If multiple tasks need to access an accelerator
/// then they might need to wait for the resource to become available"
/// (§3.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccelSpec {
    id: AccelId,
    name: String,
    active_power: Power,
}

impl AccelSpec {
    /// Creates an accelerator description.
    #[must_use]
    pub fn new(id: AccelId, name: impl Into<String>) -> Self {
        AccelSpec {
            id,
            name: name.into(),
            active_power: Power::ZERO,
        }
    }

    /// Sets the power drawn while the accelerator is busy (for the energy
    /// model of the simulator).
    #[must_use]
    pub fn with_active_power(mut self, power: Power) -> Self {
        self.active_power = power;
        self
    }

    /// The accelerator identifier.
    #[must_use]
    pub const fn id(&self) -> AccelId {
        self.id
    }

    /// The accelerator name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Power drawn while busy.
    #[must_use]
    pub const fn active_power(&self) -> Power {
        self.active_power
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accel_spec_fields() {
        let a = AccelSpec::new(AccelId::new(0), "mali-gpu").with_active_power(Power::from_watts(2));
        assert_eq!(a.id(), AccelId::new(0));
        assert_eq!(a.name(), "mali-gpu");
        assert_eq!(a.active_power().as_milliwatts(), 2_000);
    }
}
