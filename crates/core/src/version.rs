//! Multi-version tasks: functionally equivalent implementations with
//! distinct extra-functional behaviour.
//!
//! "All versions of a single task are functionally equivalent, and expose
//! the same interface, but each one has its own distinct non-functional
//! behaviour, i.e. worst-case execution time (WCET), energy consumption"
//! (§2). A version may additionally target a hardware accelerator declared
//! via [`crate::graph::TaskSetBuilder::hwaccel_decl`].

use crate::energy::Energy;
use crate::ids::AccelId;
use crate::time::Duration;
use std::fmt;

/// The execution mode the system is currently in.
///
/// Modes are small indices (0–31); a version declares the set of modes it
/// may run in through a [`ModeMask`]. The paper's example is a
/// "multi-security mode where different implementations of an encryption
/// algorithm can be switched at runtime" (§3.2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct ExecMode(u8);

impl ExecMode {
    /// The default mode (index 0), e.g. "normal".
    pub const NORMAL: ExecMode = ExecMode(0);

    /// Creates a mode from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub const fn new(index: u8) -> Self {
        assert!(index < 32, "at most 32 execution modes are supported");
        ExecMode(index)
    }

    /// The mode index.
    #[must_use]
    pub const fn index(self) -> u8 {
        self.0
    }
}

impl fmt::Display for ExecMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mode{}", self.0)
    }
}

/// A set of execution modes, as a 32-bit mask.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModeMask(u32);

impl ModeMask {
    /// Matches every mode (the default for versions that do not care).
    pub const ALL: ModeMask = ModeMask(u32::MAX);
    /// Matches no mode.
    pub const NONE: ModeMask = ModeMask(0);

    /// A mask containing exactly `mode`.
    #[must_use]
    pub const fn only(mode: ExecMode) -> Self {
        ModeMask(1 << mode.index())
    }

    /// Creates a mask from raw bits (bit *i* = mode *i*).
    #[must_use]
    pub const fn from_bits(bits: u32) -> Self {
        ModeMask(bits)
    }

    /// The raw bits.
    #[must_use]
    pub const fn bits(self) -> u32 {
        self.0
    }

    /// Union of two masks.
    #[must_use]
    pub const fn union(self, other: ModeMask) -> ModeMask {
        ModeMask(self.0 | other.0)
    }

    /// Adds `mode` to the mask.
    #[must_use]
    pub const fn with(self, mode: ExecMode) -> ModeMask {
        ModeMask(self.0 | (1 << mode.index()))
    }

    /// `true` if the mask contains `mode`.
    #[must_use]
    pub const fn contains(self, mode: ExecMode) -> bool {
        self.0 & (1 << mode.index()) != 0
    }
}

impl Default for ModeMask {
    fn default() -> Self {
        ModeMask::ALL
    }
}

impl fmt::Debug for ModeMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ModeMask({:#010x})", self.0)
    }
}

/// A bit-mask of permissions; the permission-based selection policy picks
/// only versions whose mask intersects the currently granted permissions
/// (§3.2, option 4).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct PermMask(u32);

impl PermMask {
    /// Grants everything.
    pub const ALL: PermMask = PermMask(u32::MAX);
    /// Grants nothing.
    pub const NONE: PermMask = PermMask(0);

    /// Creates a mask from raw bits.
    #[must_use]
    pub const fn from_bits(bits: u32) -> Self {
        PermMask(bits)
    }

    /// The raw bits.
    #[must_use]
    pub const fn bits(self) -> u32 {
        self.0
    }

    /// `true` if the two masks share at least one bit.
    #[must_use]
    pub const fn intersects(self, other: PermMask) -> bool {
        self.0 & other.0 != 0
    }
}

impl Default for PermMask {
    fn default() -> Self {
        PermMask::ALL
    }
}

impl fmt::Debug for PermMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PermMask({:#010x})", self.0)
    }
}

/// Per-version selection properties (the paper's `VSelect props` argument
/// to `version_decl`, §3.1/§3.2).
///
/// Each selection policy reads the fields it needs; unused fields keep
/// their permissive defaults, so the same declaration works under any
/// configured policy ("allowing for an easy switch at compile time").
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VersionProps {
    /// Energy this version needs per activation; the energy policy only
    /// selects versions whose budget fits the remaining battery.
    pub energy_budget: Option<Energy>,
    /// Modes in which this version may run.
    pub modes: ModeMask,
    /// Permission bits carried by this version.
    pub permissions: PermMask,
}

impl VersionProps {
    /// Properties that make the version eligible under every policy.
    #[must_use]
    pub fn permissive() -> Self {
        VersionProps::default()
    }
}

/// One implementation of a task, with its extra-functional profile.
///
/// # Examples
///
/// ```
/// use yasmin_core::time::Duration;
/// use yasmin_core::version::VersionSpec;
///
/// let cpu = VersionSpec::new("detect-cpu", Duration::from_millis(230));
/// assert!(cpu.accel().is_none());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VersionSpec {
    name: String,
    wcet: Duration,
    energy: Energy,
    accel: Option<AccelId>,
    props: VersionProps,
}

impl VersionSpec {
    /// Creates a CPU-only version with the given WCET (on the reference
    /// core class) and default selection properties.
    #[must_use]
    pub fn new(name: impl Into<String>, wcet: Duration) -> Self {
        VersionSpec {
            name: name.into(),
            wcet,
            energy: Energy::ZERO,
            accel: None,
            props: VersionProps::default(),
        }
    }

    /// Sets the energy consumed by one activation of this version.
    #[must_use]
    pub fn with_energy(mut self, energy: Energy) -> Self {
        self.energy = energy;
        self
    }

    /// Declares that this version uses a hardware accelerator.
    ///
    /// Note: per the paper's current limitation (§3.2) the accelerator is
    /// considered busy for the *whole* execution of the version, from the
    /// initial CPU part to the final CPU part; the version also occupies
    /// its worker for the whole WCET.
    #[must_use]
    pub fn with_accel(mut self, accel: AccelId) -> Self {
        self.accel = Some(accel);
        self
    }

    /// Sets the selection properties (`VSelect`).
    #[must_use]
    pub fn with_props(mut self, props: VersionProps) -> Self {
        self.props = props;
        self
    }

    /// Sets only the energy budget used by the energy selection policy.
    #[must_use]
    pub fn with_energy_budget(mut self, budget: Energy) -> Self {
        self.props.energy_budget = Some(budget);
        self
    }

    /// Restricts this version to the given execution modes.
    #[must_use]
    pub fn with_modes(mut self, modes: ModeMask) -> Self {
        self.props.modes = modes;
        self
    }

    /// Sets the permission bits of this version.
    #[must_use]
    pub fn with_permissions(mut self, permissions: PermMask) -> Self {
        self.props.permissions = permissions;
        self
    }

    /// The version name (for traces and tables).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Worst-case execution time on the reference core class.
    #[must_use]
    pub const fn wcet(&self) -> Duration {
        self.wcet
    }

    /// Energy consumed by one activation.
    #[must_use]
    pub const fn energy(&self) -> Energy {
        self.energy
    }

    /// The accelerator this version occupies, if any.
    #[must_use]
    pub const fn accel(&self) -> Option<AccelId> {
        self.accel
    }

    /// The selection properties.
    #[must_use]
    pub const fn props(&self) -> &VersionProps {
        &self.props
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_mode_bounds() {
        assert_eq!(ExecMode::new(31).index(), 31);
        assert_eq!(ExecMode::NORMAL.index(), 0);
    }

    #[test]
    #[should_panic(expected = "32")]
    fn exec_mode_rejects_large_index() {
        let _ = ExecMode::new(32);
    }

    #[test]
    fn mode_mask_membership() {
        let secure = ExecMode::new(1);
        let m = ModeMask::only(ExecMode::NORMAL).with(secure);
        assert!(m.contains(ExecMode::NORMAL));
        assert!(m.contains(secure));
        assert!(!m.contains(ExecMode::new(2)));
        assert!(ModeMask::ALL.contains(ExecMode::new(31)));
        assert!(!ModeMask::NONE.contains(ExecMode::NORMAL));
    }

    #[test]
    fn mode_mask_union() {
        let a = ModeMask::only(ExecMode::new(0));
        let b = ModeMask::only(ExecMode::new(3));
        let u = a.union(b);
        assert!(u.contains(ExecMode::new(0)) && u.contains(ExecMode::new(3)));
    }

    #[test]
    fn perm_mask_intersection() {
        let a = PermMask::from_bits(0b0110);
        let b = PermMask::from_bits(0b0100);
        let c = PermMask::from_bits(0b1000);
        assert!(a.intersects(b));
        assert!(!a.intersects(c));
        assert!(PermMask::ALL.intersects(a));
        assert!(!PermMask::NONE.intersects(a));
    }

    #[test]
    fn version_builder_chains() {
        let v = VersionSpec::new("enc-aes", Duration::from_millis(100))
            .with_energy(Energy::from_millijoules(12))
            .with_energy_budget(Energy::from_millijoules(15))
            .with_modes(ModeMask::only(ExecMode::new(1)))
            .with_permissions(PermMask::from_bits(0b1));
        assert_eq!(v.name(), "enc-aes");
        assert_eq!(v.wcet(), Duration::from_millis(100));
        assert_eq!(v.energy().as_microjoules(), 12_000);
        assert_eq!(v.props().energy_budget, Some(Energy::from_millijoules(15)));
        assert!(v.props().modes.contains(ExecMode::new(1)));
        assert!(!v.props().modes.contains(ExecMode::NORMAL));
        assert!(v.accel().is_none());
    }

    #[test]
    fn accel_version() {
        let v =
            VersionSpec::new("detect-gpu", Duration::from_millis(130)).with_accel(AccelId::new(0));
        assert_eq!(v.accel(), Some(AccelId::new(0)));
    }

    #[test]
    fn default_props_are_permissive() {
        let p = VersionProps::permissive();
        assert_eq!(p.energy_budget, None);
        assert!(p.modes.contains(ExecMode::new(17)));
        assert!(p.permissions.intersects(PermMask::from_bits(1 << 30)));
    }
}
