//! Descriptions of COTS heterogeneous platforms.
//!
//! The evaluation targets the Odroid-XU4 (ARM big.LITTLE octa-core + Mali
//! GPU, §4) and the drone's Apalis TK1 (quad Cortex-A15 + Kepler GPU, §5).
//! A [`PlatformSpec`] captures what the scheduler and the simulator need:
//! core classes with relative speeds and power draw, and the number of
//! cores per class.

use crate::energy::Power;
use crate::ids::CoreId;
use crate::time::Duration;

/// A class of identical cores (e.g. the "big" cluster).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoreClass {
    name: String,
    /// Relative speed as a fraction `speed_num / speed_den` of the
    /// reference class (1/1 = reference). WCETs are specified on the
    /// reference class and stretched on slower cores.
    speed_num: u64,
    speed_den: u64,
    active_power: Power,
    idle_power: Power,
}

impl CoreClass {
    /// Creates a core class with speed `speed_num / speed_den` relative to
    /// the reference class.
    ///
    /// # Panics
    ///
    /// Panics if either speed component is zero.
    #[must_use]
    pub fn new(name: impl Into<String>, speed_num: u64, speed_den: u64) -> Self {
        assert!(speed_num > 0 && speed_den > 0, "speed must be positive");
        CoreClass {
            name: name.into(),
            speed_num,
            speed_den,
            active_power: Power::ZERO,
            idle_power: Power::ZERO,
        }
    }

    /// Sets active/idle power for the energy model.
    #[must_use]
    pub fn with_power(mut self, active: Power, idle: Power) -> Self {
        self.active_power = active;
        self.idle_power = idle;
        self
    }

    /// The class name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Relative speed as `(num, den)`.
    #[must_use]
    pub const fn speed(&self) -> (u64, u64) {
        (self.speed_num, self.speed_den)
    }

    /// Power drawn while executing.
    #[must_use]
    pub const fn active_power(&self) -> Power {
        self.active_power
    }

    /// Power drawn while idle.
    #[must_use]
    pub const fn idle_power(&self) -> Power {
        self.idle_power
    }

    /// Time to execute `reference_wcet` worth of work on this class:
    /// `wcet × den / num` (a half-speed core doubles the time).
    #[must_use]
    pub fn exec_time(&self, reference_wcet: Duration) -> Duration {
        reference_wcet.scale(self.speed_den, self.speed_num)
    }
}

/// A whole platform: an ordered list of cores, each belonging to a class.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlatformSpec {
    name: String,
    classes: Vec<CoreClass>,
    /// `core_class[i]` = index into `classes` for core `i`.
    core_class: Vec<usize>,
}

impl PlatformSpec {
    /// Creates a platform from classes and a per-core class assignment.
    ///
    /// # Panics
    ///
    /// Panics if a class index is out of range or there are no cores.
    #[must_use]
    pub fn new(name: impl Into<String>, classes: Vec<CoreClass>, core_class: Vec<usize>) -> Self {
        assert!(!core_class.is_empty(), "a platform needs at least one core");
        assert!(
            core_class.iter().all(|&c| c < classes.len()),
            "core class index out of range"
        );
        PlatformSpec {
            name: name.into(),
            classes,
            core_class,
        }
    }

    /// A homogeneous platform of `n` reference cores.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn uniform(n: usize) -> Self {
        PlatformSpec::new(
            format!("uniform-{n}"),
            vec![CoreClass::new("core", 1, 1)
                .with_power(Power::from_milliwatts(1_000), Power::from_milliwatts(100))],
            vec![0; n],
        )
    }

    /// The Odroid-XU4 used in the paper's evaluation (§4): four big
    /// Cortex-A15-class cores (reference speed) and four LITTLE
    /// Cortex-A7-class cores at roughly 0.4× speed.
    ///
    /// Power figures are representative of the Exynos 5422 SoC
    /// (big ≈ 1.5 W, LITTLE ≈ 0.25 W per active core).
    #[must_use]
    pub fn odroid_xu4() -> Self {
        let big = CoreClass::new("big-A15", 1, 1)
            .with_power(Power::from_milliwatts(1_500), Power::from_milliwatts(150));
        let little = CoreClass::new("LITTLE-A7", 2, 5)
            .with_power(Power::from_milliwatts(250), Power::from_milliwatts(40));
        PlatformSpec::new(
            "odroid-xu4",
            vec![big, little],
            vec![0, 0, 0, 0, 1, 1, 1, 1],
        )
    }

    /// The Toradex Apalis TK1 carrying the drone's SAR payload (§5):
    /// quad-core Cortex-A15; the Kepler GPU is declared separately as an
    /// accelerator on the task set.
    #[must_use]
    pub fn apalis_tk1() -> Self {
        let a15 = CoreClass::new("A15", 1, 1)
            .with_power(Power::from_milliwatts(1_800), Power::from_milliwatts(200));
        PlatformSpec::new("apalis-tk1", vec![a15], vec![0; 4])
    }

    /// The platform name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of cores.
    #[must_use]
    pub fn core_count(&self) -> usize {
        self.core_class.len()
    }

    /// All core identifiers.
    pub fn cores(&self) -> impl Iterator<Item = CoreId> + '_ {
        (0..self.core_class.len()).map(|i| CoreId::new(i as u16))
    }

    /// The class of a core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn class_of(&self, core: CoreId) -> &CoreClass {
        &self.classes[self.core_class[core.index()]]
    }

    /// All declared classes.
    #[must_use]
    pub fn classes(&self) -> &[CoreClass] {
        &self.classes
    }

    /// Cores belonging to the class with the given name.
    pub fn cores_of_class<'a>(&'a self, name: &'a str) -> impl Iterator<Item = CoreId> + 'a {
        self.core_class
            .iter()
            .enumerate()
            .filter(move |&(_, &ci)| self.classes[ci].name() == name)
            .map(|(i, _)| CoreId::new(i as u16))
    }

    /// Time to run `reference_wcet` of work on `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn exec_time(&self, core: CoreId, reference_wcet: Duration) -> Duration {
        self.class_of(core).exec_time(reference_wcet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_class_speed_scaling() {
        let little = CoreClass::new("LITTLE", 2, 5);
        // 100ms of reference work takes 250ms at 0.4x speed.
        assert_eq!(
            little.exec_time(Duration::from_millis(100)),
            Duration::from_millis(250)
        );
        let big = CoreClass::new("big", 1, 1);
        assert_eq!(
            big.exec_time(Duration::from_millis(100)),
            Duration::from_millis(100)
        );
    }

    #[test]
    fn odroid_preset_shape() {
        let p = PlatformSpec::odroid_xu4();
        assert_eq!(p.core_count(), 8);
        assert_eq!(p.cores_of_class("big-A15").count(), 4);
        assert_eq!(p.cores_of_class("LITTLE-A7").count(), 4);
        assert_eq!(p.class_of(CoreId::new(0)).name(), "big-A15");
        assert_eq!(p.class_of(CoreId::new(7)).name(), "LITTLE-A7");
        // LITTLE cores stretch execution times.
        assert!(
            p.exec_time(CoreId::new(7), Duration::from_millis(10))
                > p.exec_time(CoreId::new(0), Duration::from_millis(10))
        );
    }

    #[test]
    fn tk1_preset_shape() {
        let p = PlatformSpec::apalis_tk1();
        assert_eq!(p.core_count(), 4);
        assert_eq!(p.classes().len(), 1);
    }

    #[test]
    fn uniform_platform() {
        let p = PlatformSpec::uniform(3);
        assert_eq!(p.core_count(), 3);
        assert_eq!(p.cores().count(), 3);
        assert_eq!(
            p.exec_time(CoreId::new(2), Duration::from_micros(5)),
            Duration::from_micros(5)
        );
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn empty_platform_panics() {
        let _ = PlatformSpec::new("empty", vec![CoreClass::new("c", 1, 1)], vec![]);
    }
}
