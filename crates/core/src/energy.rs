//! Energy and power quantities for version selection and the platform
//! energy model.
//!
//! Multi-version tasks expose distinct energy behaviour (§2), and one of the
//! version-selection policies picks a version "depending on the current
//! energy capacity of the platform" (§3.2). Quantities are integer-backed:
//! [`Power`] in milliwatts, [`Energy`] in microjoules, and the battery state
//! [`BatteryLevel`] in permille of full charge.

use crate::time::Duration;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// Electrical power in milliwatts.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Power(u64);

impl Power {
    /// Zero power.
    pub const ZERO: Power = Power(0);

    /// Creates a power from milliwatts.
    #[must_use]
    pub const fn from_milliwatts(mw: u64) -> Self {
        Power(mw)
    }

    /// Creates a power from whole watts.
    #[must_use]
    pub const fn from_watts(w: u64) -> Self {
        Power(w * 1_000)
    }

    /// The value in milliwatts.
    #[must_use]
    pub const fn as_milliwatts(self) -> u64 {
        self.0
    }

    /// Energy consumed by drawing this power for `d`.
    ///
    /// `mW × ns = 10⁻³ J/s × 10⁻⁹ s = picojoule`, converted to microjoules
    /// with 128-bit intermediates so no realistic value overflows.
    #[must_use]
    pub fn energy_over(self, d: Duration) -> Energy {
        let picojoules = u128::from(self.0) * u128::from(d.as_nanos());
        Energy(u64::try_from(picojoules / 1_000_000).unwrap_or(u64::MAX))
    }
}

impl Add for Power {
    type Output = Power;
    fn add(self, rhs: Power) -> Power {
        Power(self.0 + rhs.0)
    }
}

impl fmt::Debug for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}mW", self.0)
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}mW", self.0)
    }
}

/// An amount of energy in microjoules.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Energy(u64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0);

    /// Creates an energy from microjoules.
    #[must_use]
    pub const fn from_microjoules(uj: u64) -> Self {
        Energy(uj)
    }

    /// Creates an energy from millijoules.
    #[must_use]
    pub const fn from_millijoules(mj: u64) -> Self {
        Energy(mj * 1_000)
    }

    /// The value in microjoules.
    #[must_use]
    pub const fn as_microjoules(self) -> u64 {
        self.0
    }

    /// The value in fractional millijoules (reporting only).
    #[must_use]
    pub fn as_millijoules_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating subtraction.
    #[must_use]
    pub const fn saturating_sub(self, rhs: Energy) -> Energy {
        Energy(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Sub for Energy {
    type Output = Energy;
    fn sub(self, rhs: Energy) -> Energy {
        Energy(self.0 - rhs.0)
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}uJ", self.0)
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}uJ", self.0)
    }
}

/// Remaining battery charge, expressed in permille (‰) of full capacity.
///
/// The paper's energy-based version selection calls a user function that
/// "request\[s\] the platform-dependent battery status" (§3.2); that function
/// returns this type.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BatteryLevel(u16);

impl BatteryLevel {
    /// A full battery (1000‰).
    pub const FULL: BatteryLevel = BatteryLevel(1000);
    /// An empty battery (0‰).
    pub const EMPTY: BatteryLevel = BatteryLevel(0);

    /// Creates a battery level, clamped to `0..=1000` permille.
    #[must_use]
    pub const fn from_permille(pm: u16) -> Self {
        BatteryLevel(if pm > 1000 { 1000 } else { pm })
    }

    /// Creates a battery level from a percentage, clamped to `0..=100`.
    #[must_use]
    pub const fn from_percent(pct: u8) -> Self {
        let pct = if pct > 100 { 100 } else { pct };
        BatteryLevel(pct as u16 * 10)
    }

    /// The level in permille of full charge.
    #[must_use]
    pub const fn as_permille(self) -> u16 {
        self.0
    }

    /// The level as a fraction in `[0, 1]`.
    #[must_use]
    pub fn as_fraction(self) -> f64 {
        f64::from(self.0) / 1000.0
    }
}

impl Default for BatteryLevel {
    fn default() -> Self {
        BatteryLevel::FULL
    }
}

impl fmt::Debug for BatteryLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}%", self.0 / 10, self.0 % 10)
    }
}

impl fmt::Display for BatteryLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}%", self.0 / 10, self.0 % 10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_time_is_energy() {
        // 2 W for 1 ms = 2 mJ = 2000 uJ.
        let e = Power::from_watts(2).energy_over(Duration::from_millis(1));
        assert_eq!(e, Energy::from_microjoules(2_000));
    }

    #[test]
    fn tiny_energies_truncate_to_zero() {
        // 1 mW for 1 ns = 1 pJ, below microjoule resolution.
        let e = Power::from_milliwatts(1).energy_over(Duration::from_nanos(1));
        assert_eq!(e, Energy::ZERO);
    }

    #[test]
    fn energy_accumulates() {
        let total: Energy = (0..4).map(|_| Energy::from_microjoules(25)).sum();
        assert_eq!(total, Energy::from_microjoules(100));
        let mut e = Energy::ZERO;
        e += Energy::from_millijoules(1);
        assert_eq!(e.as_microjoules(), 1_000);
    }

    #[test]
    fn battery_clamps() {
        assert_eq!(BatteryLevel::from_permille(1500), BatteryLevel::FULL);
        assert_eq!(BatteryLevel::from_percent(250).as_permille(), 1000);
        assert_eq!(BatteryLevel::from_percent(42).as_permille(), 420);
    }

    #[test]
    fn battery_fraction_and_display() {
        let b = BatteryLevel::from_permille(123);
        assert!((b.as_fraction() - 0.123).abs() < 1e-9);
        assert_eq!(b.to_string(), "12.3%");
    }
}
