//! Statistics accumulators shared by the simulator, the runtime and the
//! experiment harness.
//!
//! [`Summary`] streams min/max/mean without storing samples; [`Samples`]
//! keeps everything for percentiles. The paper reports `<min, max, avg>`
//! triples (Table 2) and avg/max series (Fig. 2, Fig. 4).

use crate::time::Duration;
use std::fmt;

/// Streaming min/max/mean over `u64` observations (typically nanoseconds).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Summary {
    count: u64,
    min: u64,
    max: u64,
    sum: u128,
}

impl Summary {
    /// An empty summary.
    #[must_use]
    pub fn new() -> Self {
        Summary {
            count: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += u128::from(value);
    }

    /// Records a duration observation (as nanoseconds).
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_nanos());
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }

    /// Number of observations.
    #[must_use]
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Smallest observation, `None` if empty.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, `None` if empty.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean, `None` if empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// `(min, max, mean)` as microsecond floats — the paper's
    /// `<min, max, avg>` reporting format. Zeroes if empty.
    #[must_use]
    pub fn as_micros_triple(&self) -> (f64, f64, f64) {
        if self.count == 0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.min as f64 / 1e3,
            self.max as f64 / 1e3,
            self.mean().unwrap_or(0.0) / 1e3,
        )
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.min(), self.max(), self.mean()) {
            (Some(min), Some(max), Some(mean)) => write!(
                f,
                "n={} min={} max={} avg={}",
                self.count,
                Duration::from_nanos(min),
                Duration::from_nanos(max),
                Duration::from_nanos(mean as u64),
            ),
            _ => write!(f, "n=0"),
        }
    }
}

impl FromIterator<u64> for Summary {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for v in iter {
            s.record(v);
        }
        s
    }
}

/// Sample-retaining statistics with percentiles.
#[derive(Clone, Debug, Default)]
pub struct Samples {
    values: Vec<u64>,
    sorted: bool,
}

impl Samples {
    /// An empty sample set.
    #[must_use]
    pub fn new() -> Self {
        Samples {
            values: Vec::new(),
            sorted: true,
        }
    }

    /// Pre-allocates capacity for `n` samples (hot-path friendliness).
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        Samples {
            values: Vec::with_capacity(n),
            sorted: true,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.values.push(value);
        self.sorted = false;
    }

    /// Records a duration observation (as nanoseconds).
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_nanos());
    }

    /// Appends every observation of `other` (used when merging
    /// per-shard results into one aggregate).
    pub fn merge(&mut self, other: &Samples) {
        if other.values.is_empty() {
            return;
        }
        self.values.extend_from_slice(&other.values);
        self.sorted = false;
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// `true` if no observations were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Smallest observation.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        self.values.iter().copied().min()
    }

    /// Largest observation.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        self.values.iter().copied().max()
    }

    /// Arithmetic mean.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        let sum: u128 = self.values.iter().map(|&v| u128::from(v)).sum();
        Some(sum as f64 / self.values.len() as f64)
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> Option<f64> {
        let mean = self.mean()?;
        let var = self
            .values
            .iter()
            .map(|&v| {
                let d = v as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / self.values.len() as f64;
        Some(var.sqrt())
    }

    /// The `p`-th percentile (0–100, nearest-rank).
    ///
    /// # Panics
    ///
    /// Panics if `p > 100`.
    #[must_use]
    pub fn percentile(&mut self, p: u8) -> Option<u64> {
        assert!(p <= 100, "percentile must be in 0..=100");
        if self.values.is_empty() {
            return None;
        }
        if !self.sorted {
            self.values.sort_unstable();
            self.sorted = true;
        }
        let n = self.values.len();
        let rank = (usize::from(p) * n).div_ceil(100).clamp(1, n);
        Some(self.values[rank - 1])
    }

    /// Condenses into a streaming [`Summary`].
    #[must_use]
    pub fn summary(&self) -> Summary {
        self.values.iter().copied().collect()
    }

    /// The raw observations (unsorted or sorted depending on history).
    #[must_use]
    pub fn values(&self) -> &[u64] {
        &self.values
    }
}

impl FromIterator<u64> for Samples {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut s = Samples::new();
        for v in iter {
            s.record(v);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let mut s = Summary::new();
        assert_eq!(s.min(), None);
        assert_eq!(s.mean(), None);
        for v in [5u64, 1, 9, 5] {
            s.record(v);
        }
        assert_eq!(s.count(), 4);
        assert_eq!(s.min(), Some(1));
        assert_eq!(s.max(), Some(9));
        assert!((s.mean().unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn summary_merge() {
        let a: Summary = [1u64, 2].into_iter().collect();
        let mut b: Summary = [10u64].into_iter().collect();
        b.merge(&a);
        assert_eq!(b.count(), 3);
        assert_eq!(b.min(), Some(1));
        assert_eq!(b.max(), Some(10));
        let empty = Summary::new();
        b.merge(&empty);
        assert_eq!(b.count(), 3);
    }

    #[test]
    fn summary_micros_triple() {
        let mut s = Summary::new();
        s.record_duration(Duration::from_micros(90));
        s.record_duration(Duration::from_micros(1481));
        let (min, max, avg) = s.as_micros_triple();
        assert!((min - 90.0).abs() < 1e-9);
        assert!((max - 1481.0).abs() < 1e-9);
        assert!((avg - 785.5).abs() < 1e-9);
        assert_eq!(Summary::new().as_micros_triple(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn summary_display() {
        let s: Summary = [1_000u64, 3_000].into_iter().collect();
        let txt = s.to_string();
        assert!(txt.contains("n=2"), "{txt}");
        assert_eq!(Summary::new().to_string(), "n=0");
    }

    #[test]
    fn samples_percentiles() {
        let mut s: Samples = (1..=100u64).collect();
        assert_eq!(s.percentile(50), Some(50));
        assert_eq!(s.percentile(99), Some(99));
        assert_eq!(s.percentile(100), Some(100));
        assert_eq!(s.percentile(0), Some(1));
        assert_eq!(s.min(), Some(1));
        assert_eq!(s.max(), Some(100));
        assert!((s.mean().unwrap() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn samples_merge_appends() {
        let mut a: Samples = [10u64, 30].into_iter().collect();
        let b: Samples = [20u64].into_iter().collect();
        a.merge(&b);
        a.merge(&Samples::new());
        assert_eq!(a.count(), 3);
        assert_eq!(a.percentile(50), Some(20));
        assert_eq!(a.max(), Some(30));
    }

    #[test]
    fn samples_std_dev() {
        let s: Samples = [2u64, 4, 4, 4, 5, 5, 7, 9].into_iter().collect();
        assert!((s.std_dev().unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn samples_empty() {
        let mut s = Samples::new();
        assert!(s.is_empty());
        assert_eq!(s.percentile(50), None);
        assert_eq!(s.std_dev(), None);
        assert_eq!(s.summary().count(), 0);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn samples_percentile_out_of_range() {
        let mut s: Samples = [1u64].into_iter().collect();
        let _ = s.percentile(101);
    }

    #[test]
    fn samples_summary_agrees() {
        let s: Samples = [10u64, 20, 30].into_iter().collect();
        let sum = s.summary();
        assert_eq!(sum.min(), Some(10));
        assert_eq!(sum.max(), Some(30));
        assert_eq!(sum.count(), 3);
    }
}
