//! Priorities and priority-assignment policies.
//!
//! YASMIN "supports static and dynamic priority assignments following task
//! periods (rate monotonic), deadlines (deadline monotonic, earliest
//! deadline first) or any statically user-defined priorities" (§3.3).
//!
//! Convention: **numerically smaller means more urgent**. This makes
//! deadline-derived priorities (EDF, DM) and period-derived priorities (RM)
//! directly comparable without inversion.

use crate::time::{Duration, Instant};
use std::fmt;

/// A scheduling priority; smaller values are more urgent.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Priority(u64);

impl Priority {
    /// The most urgent priority.
    pub const HIGHEST: Priority = Priority(0);
    /// The least urgent priority.
    pub const LOWEST: Priority = Priority(u64::MAX);

    /// Creates a priority from a raw urgency value (smaller = more urgent).
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        Priority(raw)
    }

    /// Rate-monotonic priority: urgency equals the task period.
    #[must_use]
    pub const fn rate_monotonic(period: Duration) -> Self {
        Priority(period.as_nanos())
    }

    /// Deadline-monotonic priority: urgency equals the relative deadline.
    #[must_use]
    pub const fn deadline_monotonic(relative_deadline: Duration) -> Self {
        Priority(relative_deadline.as_nanos())
    }

    /// EDF job priority: urgency equals the absolute deadline.
    #[must_use]
    pub const fn earliest_deadline(abs_deadline: Instant) -> Self {
        Priority(abs_deadline.as_nanos())
    }

    /// The raw urgency value.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// `true` if `self` is strictly more urgent than `other`.
    #[must_use]
    pub const fn is_higher_than(self, other: Priority) -> bool {
        self.0 < other.0
    }
}

impl fmt::Debug for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prio({})", self.0)
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// How priorities are assigned to tasks/jobs (`PRIORITY_ASSIGNMENT` in the
/// paper's configuration header).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum PriorityPolicy {
    /// Static, by period: shorter period = more urgent.
    RateMonotonic,
    /// Static, by relative deadline: shorter deadline = more urgent.
    #[default]
    DeadlineMonotonic,
    /// Dynamic, by absolute deadline of the current job (EDF).
    EarliestDeadlineFirst,
    /// Static priorities supplied by the user on each task declaration.
    UserDefined,
}

impl PriorityPolicy {
    /// `true` for policies whose priority is fixed per task.
    #[must_use]
    pub const fn is_static(self) -> bool {
        !matches!(self, PriorityPolicy::EarliestDeadlineFirst)
    }

    /// Short display label used in experiment tables ("EDF", "DM", …).
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            PriorityPolicy::RateMonotonic => "RM",
            PriorityPolicy::DeadlineMonotonic => "DM",
            PriorityPolicy::EarliestDeadlineFirst => "EDF",
            PriorityPolicy::UserDefined => "USER",
        }
    }
}

impl fmt::Display for PriorityPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smaller_is_more_urgent() {
        assert!(Priority::HIGHEST.is_higher_than(Priority::LOWEST));
        assert!(Priority::new(10).is_higher_than(Priority::new(11)));
        assert!(!Priority::new(10).is_higher_than(Priority::new(10)));
        assert!(Priority::new(5) < Priority::new(9));
    }

    #[test]
    fn rm_orders_by_period() {
        let fast = Priority::rate_monotonic(Duration::from_millis(10));
        let slow = Priority::rate_monotonic(Duration::from_millis(500));
        assert!(fast.is_higher_than(slow));
    }

    #[test]
    fn edf_orders_by_absolute_deadline() {
        let early = Priority::earliest_deadline(Instant::from_nanos(1_000));
        let late = Priority::earliest_deadline(Instant::from_nanos(2_000));
        assert!(early.is_higher_than(late));
    }

    #[test]
    fn policy_labels() {
        assert_eq!(PriorityPolicy::EarliestDeadlineFirst.label(), "EDF");
        assert_eq!(PriorityPolicy::RateMonotonic.to_string(), "RM");
        assert!(PriorityPolicy::RateMonotonic.is_static());
        assert!(!PriorityPolicy::EarliestDeadlineFirst.is_static());
    }
}
