//! Time primitives used throughout YASMIN.
//!
//! All scheduler arithmetic is performed on `u64` nanosecond values behind
//! the [`Instant`] and [`Duration`] newtypes. Integer nanoseconds keep the
//! scheduler deterministic (no floating point) and match the paper's use of
//! `clock_gettime(CLOCK_MONOTONIC)` with nanosecond resolution (§3.5).
//!
//! Time zero is *the start of the schedule*: the paper stores the time at
//! which [`start`](https://arxiv.org/abs/2108.00730) is called and computes
//! every timing value relative to it. [`Clock`] implementations follow the
//! same convention.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};
use std::sync::atomic::{AtomicU64, Ordering};

/// A span of time with nanosecond resolution.
///
/// # Examples
///
/// ```
/// use yasmin_core::time::Duration;
///
/// let period = Duration::from_millis(10);
/// assert_eq!(period.as_nanos(), 10_000_000);
/// assert_eq!(period * 3, Duration::from_millis(30));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Duration {
    /// The zero-length span.
    pub const ZERO: Duration = Duration(0);
    /// The maximum representable span (used as an "infinite" sentinel).
    pub const MAX: Duration = Duration(u64::MAX);

    /// Creates a span from nanoseconds.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        Duration(ns)
    }

    /// Creates a span from microseconds.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        Duration(us * 1_000)
    }

    /// Creates a span from milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000_000)
    }

    /// Creates a span from whole seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000_000)
    }

    /// The span as nanoseconds.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span as (truncated) microseconds.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The span as (truncated) milliseconds.
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The span as fractional seconds (for reporting only — never used in
    /// scheduler arithmetic).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span as fractional microseconds (for reporting only).
    #[must_use]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// `true` if this span is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: `self - rhs`, or zero if `rhs > self`.
    #[must_use]
    pub const fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition, `None` on overflow.
    #[must_use]
    pub const fn checked_add(self, rhs: Duration) -> Option<Duration> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Duration(v)),
            None => None,
        }
    }

    /// Checked multiplication by a scalar, `None` on overflow.
    #[must_use]
    pub const fn checked_mul(self, rhs: u64) -> Option<Duration> {
        match self.0.checked_mul(rhs) {
            Some(v) => Some(Duration(v)),
            None => None,
        }
    }

    /// The larger of two spans.
    #[must_use]
    pub fn max(self, other: Duration) -> Duration {
        Duration(self.0.max(other.0))
    }

    /// The smaller of two spans.
    #[must_use]
    pub fn min(self, other: Duration) -> Duration {
        Duration(self.0.min(other.0))
    }

    /// Scales the span by a rational factor `num / den`, rounding down.
    ///
    /// Used to model relative core speeds (e.g. a LITTLE core running at
    /// 0.5× big-core speed scales WCETs by 2/1).
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    #[must_use]
    pub fn scale(self, num: u64, den: u64) -> Duration {
        assert!(den != 0, "scale denominator must be non-zero");
        let v = (u128::from(self.0) * u128::from(num)) / u128::from(den);
        Duration(u64::try_from(v).unwrap_or(u64::MAX))
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Div<Duration> for Duration {
    type Output = u64;
    /// How many times `rhs` fits into `self` (integer division).
    fn div(self, rhs: Duration) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem<Duration> for Duration {
    type Output = Duration;
    fn rem(self, rhs: Duration) -> Duration {
        Duration(self.0 % rhs.0)
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == u64::MAX {
            write!(f, "inf")
        } else if ns >= 1_000_000_000 && ns.is_multiple_of(1_000_000) {
            write!(f, "{}.{:03}s", ns / 1_000_000_000, (ns / 1_000_000) % 1_000)
        } else if ns >= 1_000_000 && ns.is_multiple_of(1_000) {
            write!(f, "{}.{:03}ms", ns / 1_000_000, (ns / 1_000) % 1_000)
        } else if ns >= 1_000 {
            write!(f, "{}us", ns / 1_000)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

impl From<std::time::Duration> for Duration {
    fn from(d: std::time::Duration) -> Self {
        Duration(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
    }
}

impl From<Duration> for std::time::Duration {
    fn from(d: Duration) -> Self {
        std::time::Duration::from_nanos(d.0)
    }
}

/// A point in time, measured in nanoseconds since the schedule started.
///
/// # Examples
///
/// ```
/// use yasmin_core::time::{Duration, Instant};
///
/// let t0 = Instant::ZERO;
/// let t1 = t0 + Duration::from_millis(5);
/// assert_eq!(t1 - t0, Duration::from_millis(5));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Instant(u64);

impl Instant {
    /// The schedule start.
    pub const ZERO: Instant = Instant(0);
    /// Far future sentinel.
    pub const MAX: Instant = Instant(u64::MAX);

    /// Creates an instant `ns` nanoseconds after the schedule start.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        Instant(ns)
    }

    /// Nanoseconds since the schedule start.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Saturating subtraction of a duration.
    #[must_use]
    pub const fn saturating_sub(self, rhs: Duration) -> Instant {
        Instant(self.0.saturating_sub(rhs.as_nanos()))
    }

    /// Time elapsed from `earlier` to `self`, or zero if `earlier` is later.
    #[must_use]
    pub const fn saturating_since(self, earlier: Instant) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// The larger of two instants.
    #[must_use]
    pub fn max(self, other: Instant) -> Instant {
        Instant(self.0.max(other.0))
    }

    /// The smaller of two instants.
    #[must_use]
    pub fn min(self, other: Instant) -> Instant {
        Instant(self.0.min(other.0))
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, rhs: Duration) -> Instant {
        Instant(self.0 + rhs.as_nanos())
    }
}

impl AddAssign<Duration> for Instant {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.as_nanos();
    }
}

impl Sub<Duration> for Instant {
    type Output = Instant;
    fn sub(self, rhs: Duration) -> Instant {
        Instant(self.0 - rhs.as_nanos())
    }
}

impl Sub<Instant> for Instant {
    type Output = Duration;
    fn sub(self, rhs: Instant) -> Duration {
        Duration::from_nanos(self.0 - rhs.0)
    }
}

impl fmt::Debug for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", Duration(self.0))
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", Duration(self.0))
    }
}

/// Source of the current time, relative to the schedule start.
///
/// The paper reads `CLOCK_MONOTONIC` and rebases on the instant `start()`
/// was called; [`MonotonicClock`] does the same on top of
/// [`std::time::Instant`]. [`ManualClock`] is a hand-driven clock for tests
/// and the discrete-event simulator.
pub trait Clock: Send + Sync {
    /// The current time.
    fn now(&self) -> Instant;
}

/// Wall-clock time from the OS monotonic clock, rebased to construction.
#[derive(Debug, Clone)]
pub struct MonotonicClock {
    start: std::time::Instant,
}

impl MonotonicClock {
    /// Creates a clock whose zero is *now*.
    #[must_use]
    pub fn new() -> Self {
        MonotonicClock {
            start: std::time::Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now(&self) -> Instant {
        Instant::from_nanos(u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX))
    }
}

/// A clock advanced explicitly by the owner; used by tests and the
/// discrete-event simulator.
///
/// # Examples
///
/// ```
/// use yasmin_core::time::{Clock, Duration, Instant, ManualClock};
///
/// let clock = ManualClock::new();
/// assert_eq!(clock.now(), Instant::ZERO);
/// clock.advance(Duration::from_micros(7));
/// assert_eq!(clock.now().as_nanos(), 7_000);
/// ```
#[derive(Debug, Default)]
pub struct ManualClock {
    now_ns: AtomicU64,
}

impl ManualClock {
    /// Creates a clock at time zero.
    #[must_use]
    pub fn new() -> Self {
        ManualClock {
            now_ns: AtomicU64::new(0),
        }
    }

    /// Moves the clock forward by `d`.
    pub fn advance(&self, d: Duration) {
        self.now_ns.fetch_add(d.as_nanos(), Ordering::SeqCst);
    }

    /// Jumps the clock to `t`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `t` is earlier than the current time
    /// (monotonicity violation).
    pub fn set(&self, t: Instant) {
        let prev = self.now_ns.swap(t.as_nanos(), Ordering::SeqCst);
        debug_assert!(prev <= t.as_nanos(), "ManualClock moved backwards");
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Instant {
        Instant::from_nanos(self.now_ns.load(Ordering::SeqCst))
    }
}

/// Greatest common divisor of two spans.
///
/// The scheduler thread's activation period is "determined using the
/// greatest common divisor of all the declared task periods" (§3.3).
#[must_use]
pub fn gcd(a: Duration, b: Duration) -> Duration {
    let (mut a, mut b) = (a.as_nanos(), b.as_nanos());
    while b != 0 {
        let t = b;
        b = a % b;
        a = t;
    }
    Duration::from_nanos(a)
}

/// Least common multiple of two spans (the hyperperiod building block).
///
/// Saturates at `Duration::MAX` on overflow.
#[must_use]
pub fn lcm(a: Duration, b: Duration) -> Duration {
    if a.is_zero() || b.is_zero() {
        return Duration::ZERO;
    }
    let g = gcd(a, b).as_nanos();
    let v = (u128::from(a.as_nanos()) / u128::from(g)) * u128::from(b.as_nanos());
    Duration::from_nanos(u64::try_from(v).unwrap_or(u64::MAX))
}

/// GCD over an iterator of spans; `None` if the iterator is empty or only
/// contains zero spans.
pub fn gcd_all<I: IntoIterator<Item = Duration>>(periods: I) -> Option<Duration> {
    let mut acc: Option<Duration> = None;
    for p in periods {
        if p.is_zero() {
            continue;
        }
        acc = Some(match acc {
            None => p,
            Some(g) => gcd(g, p),
        });
    }
    acc
}

/// LCM over an iterator of spans (the hyperperiod); `None` if empty.
pub fn lcm_all<I: IntoIterator<Item = Duration>>(periods: I) -> Option<Duration> {
    let mut acc: Option<Duration> = None;
    for p in periods {
        if p.is_zero() {
            continue;
        }
        acc = Some(match acc {
            None => p,
            Some(l) => lcm(l, p),
        });
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(Duration::from_secs(1), Duration::from_millis(1_000));
        assert_eq!(Duration::from_millis(1), Duration::from_micros(1_000));
        assert_eq!(Duration::from_micros(1), Duration::from_nanos(1_000));
    }

    #[test]
    fn duration_arithmetic() {
        let a = Duration::from_micros(10);
        let b = Duration::from_micros(4);
        assert_eq!(a + b, Duration::from_micros(14));
        assert_eq!(a - b, Duration::from_micros(6));
        assert_eq!(a * 3, Duration::from_micros(30));
        assert_eq!(a / 2, Duration::from_micros(5));
        assert_eq!(a / b, 2);
        assert_eq!(a % b, Duration::from_micros(2));
    }

    #[test]
    fn duration_saturating_sub_clamps() {
        let a = Duration::from_nanos(5);
        let b = Duration::from_nanos(9);
        assert_eq!(a.saturating_sub(b), Duration::ZERO);
        assert_eq!(b.saturating_sub(a), Duration::from_nanos(4));
    }

    #[test]
    fn duration_scale_rationals() {
        let wcet = Duration::from_millis(100);
        // LITTLE core at 0.4x speed -> work takes 100 * 10 / 4 = 250 ms.
        assert_eq!(wcet.scale(10, 4), Duration::from_millis(250));
        assert_eq!(wcet.scale(1, 1), wcet);
        assert_eq!(Duration::ZERO.scale(7, 3), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn duration_scale_zero_den_panics() {
        let _ = Duration::from_nanos(1).scale(1, 0);
    }

    #[test]
    fn duration_display_picks_unit() {
        assert_eq!(Duration::from_nanos(12).to_string(), "12ns");
        assert_eq!(Duration::from_micros(12).to_string(), "12us");
        assert_eq!(Duration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(Duration::from_secs(2).to_string(), "2.000s");
        assert_eq!(Duration::MAX.to_string(), "inf");
    }

    #[test]
    fn instant_duration_interplay() {
        let t = Instant::from_nanos(1_000);
        let t2 = t + Duration::from_nanos(500);
        assert_eq!(t2 - t, Duration::from_nanos(500));
        assert_eq!(
            t2.saturating_since(Instant::from_nanos(2_000)),
            Duration::ZERO
        );
        assert_eq!(t.saturating_sub(Duration::from_nanos(5_000)), Instant::ZERO);
    }

    #[test]
    fn gcd_of_typical_periods() {
        // 10ms and 25ms -> 5ms scheduler tick.
        let g = gcd(Duration::from_millis(10), Duration::from_millis(25));
        assert_eq!(g, Duration::from_millis(5));
    }

    #[test]
    fn gcd_all_skips_zero_and_handles_empty() {
        assert_eq!(gcd_all(Vec::new()), None);
        assert_eq!(gcd_all(vec![Duration::ZERO]), None);
        let g = gcd_all(vec![
            Duration::from_millis(500),
            Duration::from_millis(10),
            Duration::ZERO,
        ]);
        assert_eq!(g, Some(Duration::from_millis(10)));
    }

    #[test]
    fn lcm_hyperperiod() {
        let h = lcm_all(vec![
            Duration::from_millis(10),
            Duration::from_millis(25),
            Duration::from_millis(4),
        ]);
        assert_eq!(h, Some(Duration::from_millis(100)));
    }

    #[test]
    fn lcm_overflow_saturates() {
        let big = Duration::from_nanos(u64::MAX - 1);
        let other = Duration::from_nanos(u64::MAX - 3);
        assert_eq!(lcm(big, other), Duration::MAX);
    }

    #[test]
    fn manual_clock_advances() {
        let c = ManualClock::new();
        assert_eq!(c.now(), Instant::ZERO);
        c.advance(Duration::from_millis(3));
        c.advance(Duration::from_millis(2));
        assert_eq!(c.now(), Instant::from_nanos(5_000_000));
        c.set(Instant::from_nanos(9_000_000));
        assert_eq!(c.now().as_nanos(), 9_000_000);
    }

    #[test]
    fn monotonic_clock_is_monotone() {
        let c = MonotonicClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn std_duration_round_trip() {
        let d = Duration::from_micros(1234);
        let s: std::time::Duration = d.into();
        assert_eq!(Duration::from(s), d);
    }
}
