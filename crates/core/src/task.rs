//! The task model: sporadic/periodic/aperiodic tasks with implicit,
//! constrained or arbitrary deadlines (§2).

use crate::error::{Error, Result};
use crate::ids::{TaskId, VersionId, WorkerId};
use crate::priority::Priority;
use crate::time::Duration;
use crate::version::VersionSpec;
use std::fmt;

/// How a task is activated.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum ActivationKind {
    /// Released exactly every period.
    #[default]
    Periodic,
    /// Released with a *minimum* inter-arrival time of one period.
    Sporadic,
    /// Released explicitly by the user via `task_activate`; "no regular
    /// pattern can be given to the scheduler" (§2).
    Aperiodic,
}

impl ActivationKind {
    /// `true` for periodic or sporadic tasks (those the scheduler thread
    /// releases on its own).
    #[must_use]
    pub const fn is_recurring(self) -> bool {
        !matches!(self, ActivationKind::Aperiodic)
    }
}

/// What the scheduler does when a job of this task is still running past
/// its enforcement deadline (dispatch instant + selected version's WCET),
/// or when its body fails (a worker panic contained by the runtime).
///
/// Enforcement is opt-in via `Config::enforce_wcet`; the policy is
/// per-task so one misbehaving pipeline stage can be contained without
/// touching the rest of the graph.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum OverrunPolicy {
    /// Retire the job at the overrun: its successor tokens are dropped
    /// (downstream DAG nodes never fire from this activation). The body
    /// itself still runs to completion on its worker — the middleware
    /// never destroys a thread mid-body — but the completion is
    /// discarded from the schedule's point of view.
    Kill,
    /// Keep the job but demote it to background priority so it can only
    /// use otherwise-idle processor time; successors fire normally when
    /// it eventually completes.
    DemoteToBackground,
    /// Count the overrun (`EngineStats::overruns`) and keep going.
    /// `LogOnly` tasks are also the shedding class: the deadline-miss
    /// trip wire demotes them first under overload.
    #[default]
    LogOnly,
}

/// The deadline scheme of a task, relative to its period (§2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum DeadlineKind {
    /// `D = T`.
    #[default]
    Implicit,
    /// `D ≤ T` (validated at build time).
    Constrained(Duration),
    /// `D` unrelated to `T` (may exceed it).
    Arbitrary(Duration),
}

/// Static description of a task (the paper's `TData` structure, Table 1).
///
/// Build with the fluent constructors and pass to
/// [`crate::graph::TaskSetBuilder::task_decl`]:
///
/// ```
/// use yasmin_core::task::TaskSpec;
/// use yasmin_core::time::Duration;
///
/// let fork = TaskSpec::periodic("fork", Duration::from_millis(250));
/// assert_eq!(fork.period(), Duration::from_millis(250));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskSpec {
    name: String,
    kind: ActivationKind,
    period: Duration,
    deadline: DeadlineKind,
    release_offset: Duration,
    assigned_worker: Option<WorkerId>,
    static_priority: Option<Priority>,
    overrun_policy: OverrunPolicy,
}

impl TaskSpec {
    /// A periodic task released every `period`.
    #[must_use]
    pub fn periodic(name: impl Into<String>, period: Duration) -> Self {
        TaskSpec {
            name: name.into(),
            kind: ActivationKind::Periodic,
            period,
            deadline: DeadlineKind::Implicit,
            release_offset: Duration::ZERO,
            assigned_worker: None,
            static_priority: None,
            overrun_policy: OverrunPolicy::LogOnly,
        }
    }

    /// A sporadic task with minimum inter-arrival time `period`.
    #[must_use]
    pub fn sporadic(name: impl Into<String>, min_inter_arrival: Duration) -> Self {
        let mut s = Self::periodic(name, min_inter_arrival);
        s.kind = ActivationKind::Sporadic;
        s
    }

    /// An aperiodic task, activated explicitly by the user.
    #[must_use]
    pub fn aperiodic(name: impl Into<String>) -> Self {
        TaskSpec {
            name: name.into(),
            kind: ActivationKind::Aperiodic,
            period: Duration::ZERO,
            deadline: DeadlineKind::Implicit,
            release_offset: Duration::ZERO,
            assigned_worker: None,
            static_priority: None,
            overrun_policy: OverrunPolicy::LogOnly,
        }
    }

    /// A graph inner node: activated by data on its input channels, not by
    /// time (§3.3: "only the root nodes need to have a period attached").
    #[must_use]
    pub fn graph_node(name: impl Into<String>) -> Self {
        // Inner nodes are modelled as aperiodic: the scheduler engine
        // releases them when all predecessors have produced.
        Self::aperiodic(name)
    }

    /// Sets a constrained deadline (`D ≤ T`; checked at build time).
    #[must_use]
    pub fn with_constrained_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = DeadlineKind::Constrained(deadline);
        self
    }

    /// Sets an arbitrary deadline (may exceed the period).
    #[must_use]
    pub fn with_arbitrary_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = DeadlineKind::Arbitrary(deadline);
        self
    }

    /// Delays the first release by `offset`.
    #[must_use]
    pub fn with_release_offset(mut self, offset: Duration) -> Self {
        self.release_offset = offset;
        self
    }

    /// Pins the task to a worker ("virtual core"), required by partitioned
    /// mapping (the `virt_core_id` field of `TData`).
    #[must_use]
    pub fn on_worker(mut self, worker: WorkerId) -> Self {
        self.assigned_worker = Some(worker);
        self
    }

    /// Supplies a user-defined static priority.
    #[must_use]
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.static_priority = Some(priority);
        self
    }

    /// Sets the WCET-overrun / body-failure policy (default
    /// [`OverrunPolicy::LogOnly`]). Only consulted when the engine runs
    /// with `Config::enforce_wcet(true)` or when a body panics.
    #[must_use]
    pub fn with_overrun_policy(mut self, policy: OverrunPolicy) -> Self {
        self.overrun_policy = policy;
        self
    }

    /// The task name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The activation kind.
    #[must_use]
    pub const fn kind(&self) -> ActivationKind {
        self.kind
    }

    /// The period (or minimum inter-arrival time); zero for aperiodic
    /// tasks.
    #[must_use]
    pub const fn period(&self) -> Duration {
        self.period
    }

    /// The deadline scheme.
    #[must_use]
    pub const fn deadline(&self) -> DeadlineKind {
        self.deadline
    }

    /// The deadline as a span after release: the period for implicit
    /// deadlines, the declared value otherwise. `Duration::MAX` for
    /// aperiodic tasks with implicit deadlines (no constraint).
    #[must_use]
    pub fn relative_deadline(&self) -> Duration {
        match self.deadline {
            DeadlineKind::Implicit => {
                if self.period.is_zero() {
                    Duration::MAX
                } else {
                    self.period
                }
            }
            DeadlineKind::Constrained(d) | DeadlineKind::Arbitrary(d) => d,
        }
    }

    /// The release offset of the first activation.
    #[must_use]
    pub const fn release_offset(&self) -> Duration {
        self.release_offset
    }

    /// The worker this task is pinned to, if any.
    #[must_use]
    pub const fn assigned_worker(&self) -> Option<WorkerId> {
        self.assigned_worker
    }

    /// The user-defined static priority, if any.
    #[must_use]
    pub const fn static_priority(&self) -> Option<Priority> {
        self.static_priority
    }

    /// The WCET-overrun / body-failure policy.
    #[must_use]
    pub const fn overrun_policy(&self) -> OverrunPolicy {
        self.overrun_policy
    }

    /// Validates internal consistency (used by the task-set builder).
    ///
    /// # Errors
    ///
    /// [`Error::ZeroPeriod`] for recurring tasks without a period and
    /// [`Error::DeadlineExceedsPeriod`] for constrained deadlines larger
    /// than the period.
    pub fn validate(&self, id: TaskId) -> Result<()> {
        if self.kind.is_recurring() && self.period.is_zero() {
            return Err(Error::ZeroPeriod(id));
        }
        if let DeadlineKind::Constrained(d) = self.deadline {
            if self.kind.is_recurring() && d > self.period {
                return Err(Error::DeadlineExceedsPeriod(id));
            }
        }
        Ok(())
    }
}

/// A declared task: its specification plus all declared versions.
#[derive(Clone, Debug)]
pub struct Task {
    id: TaskId,
    spec: TaskSpec,
    versions: Vec<VersionSpec>,
}

impl Task {
    /// Creates a task; used by the task-set builder.
    #[must_use]
    pub fn new(id: TaskId, spec: TaskSpec) -> Self {
        Task {
            id,
            spec,
            versions: Vec::new(),
        }
    }

    /// The task identifier.
    #[must_use]
    pub const fn id(&self) -> TaskId {
        self.id
    }

    /// The task specification.
    #[must_use]
    pub const fn spec(&self) -> &TaskSpec {
        &self.spec
    }

    /// All declared versions, indexable by [`VersionId`].
    #[must_use]
    pub fn versions(&self) -> &[VersionSpec] {
        &self.versions
    }

    /// The version with the given id.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownVersion`] if out of range.
    pub fn version(&self, v: VersionId) -> Result<&VersionSpec> {
        self.versions
            .get(v.index())
            .ok_or(Error::UnknownVersion(self.id, v))
    }

    /// Appends a version and returns its id; used by the builder.
    pub fn push_version(&mut self, spec: VersionSpec) -> VersionId {
        let id = VersionId::new(u16::try_from(self.versions.len()).expect("< 65536 versions"));
        self.versions.push(spec);
        id
    }

    /// Replaces the accelerator binding of a version (builder use).
    ///
    /// # Errors
    ///
    /// [`Error::UnknownVersion`] if out of range.
    pub fn bind_accel(&mut self, v: VersionId, accel: crate::ids::AccelId) -> Result<()> {
        let id = self.id;
        let slot = self
            .versions
            .get_mut(v.index())
            .ok_or(Error::UnknownVersion(id, v))?;
        *slot = slot.clone().with_accel(accel);
        Ok(())
    }

    /// The smallest WCET over all versions (used for best-case utilisation
    /// figures and as the default offline choice).
    #[must_use]
    pub fn min_wcet(&self) -> Duration {
        self.versions
            .iter()
            .map(VersionSpec::wcet)
            .min()
            .unwrap_or(Duration::ZERO)
    }

    /// The largest WCET over all versions (pessimistic utilisation).
    #[must_use]
    pub fn max_wcet(&self) -> Duration {
        self.versions
            .iter()
            .map(VersionSpec::wcet)
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Utilisation `C/T` using the *largest* WCET; `None` for aperiodic
    /// tasks (no period).
    #[must_use]
    pub fn utilization_max(&self) -> Option<f64> {
        if self.spec.period.is_zero() {
            None
        } else {
            Some(self.max_wcet().as_nanos() as f64 / self.spec.period.as_nanos() as f64)
        }
    }

    /// `true` if at least one version avoids every accelerator (pure CPU).
    #[must_use]
    pub fn has_cpu_version(&self) -> bool {
        self.versions.iter().any(|v| v.accel().is_none())
    }

    /// Versions that target the given accelerator.
    pub fn versions_on_accel(
        &self,
        accel: crate::ids::AccelId,
    ) -> impl Iterator<Item = (VersionId, &VersionSpec)> {
        self.versions
            .iter()
            .enumerate()
            .filter(move |(_, v)| v.accel() == Some(accel))
            .map(|(i, v)| (VersionId::new(i as u16), v))
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}({}, T={}, {} version(s))",
            self.spec.name(),
            self.id,
            self.spec.period(),
            self.versions.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::Energy;
    use crate::ids::AccelId;

    #[test]
    fn periodic_spec_defaults() {
        let s = TaskSpec::periodic("fc", Duration::from_millis(10));
        assert_eq!(s.kind(), ActivationKind::Periodic);
        assert_eq!(s.relative_deadline(), Duration::from_millis(10));
        assert_eq!(s.release_offset(), Duration::ZERO);
        assert!(s.assigned_worker().is_none());
        assert!(s.validate(TaskId::new(0)).is_ok());
    }

    #[test]
    fn sporadic_and_aperiodic_kinds() {
        assert!(ActivationKind::Sporadic.is_recurring());
        assert!(!ActivationKind::Aperiodic.is_recurring());
        let s = TaskSpec::sporadic("s", Duration::from_millis(5));
        assert_eq!(s.kind(), ActivationKind::Sporadic);
        let a = TaskSpec::aperiodic("a");
        assert_eq!(a.period(), Duration::ZERO);
        assert_eq!(a.relative_deadline(), Duration::MAX);
        assert!(a.validate(TaskId::new(1)).is_ok());
    }

    #[test]
    fn constrained_deadline_validation() {
        let ok = TaskSpec::periodic("t", Duration::from_millis(10))
            .with_constrained_deadline(Duration::from_millis(8));
        assert!(ok.validate(TaskId::new(0)).is_ok());
        assert_eq!(ok.relative_deadline(), Duration::from_millis(8));

        let bad = TaskSpec::periodic("t", Duration::from_millis(10))
            .with_constrained_deadline(Duration::from_millis(12));
        assert_eq!(
            bad.validate(TaskId::new(3)),
            Err(Error::DeadlineExceedsPeriod(TaskId::new(3)))
        );
    }

    #[test]
    fn arbitrary_deadline_may_exceed_period() {
        let s = TaskSpec::periodic("t", Duration::from_millis(10))
            .with_arbitrary_deadline(Duration::from_millis(30));
        assert!(s.validate(TaskId::new(0)).is_ok());
        assert_eq!(s.relative_deadline(), Duration::from_millis(30));
    }

    #[test]
    fn zero_period_recurring_rejected() {
        let s = TaskSpec::periodic("t", Duration::ZERO);
        assert_eq!(
            s.validate(TaskId::new(7)),
            Err(Error::ZeroPeriod(TaskId::new(7)))
        );
    }

    #[test]
    fn task_version_management() {
        let mut t = Task::new(
            TaskId::new(0),
            TaskSpec::periodic("d", Duration::from_millis(500)),
        );
        let v0 = t.push_version(VersionSpec::new("gpu", Duration::from_millis(130)));
        let v1 = t.push_version(
            VersionSpec::new("cpu", Duration::from_millis(230))
                .with_energy(Energy::from_millijoules(9)),
        );
        assert_eq!(v0, VersionId::new(0));
        assert_eq!(v1, VersionId::new(1));
        assert_eq!(t.versions().len(), 2);
        assert_eq!(t.min_wcet(), Duration::from_millis(130));
        assert_eq!(t.max_wcet(), Duration::from_millis(230));
        assert!(t.version(VersionId::new(2)).is_err());
        let u = t.utilization_max().unwrap();
        assert!((u - 0.46).abs() < 1e-9);
    }

    #[test]
    fn accel_binding() {
        let mut t = Task::new(
            TaskId::new(0),
            TaskSpec::periodic("d", Duration::from_millis(500)),
        );
        let v = t.push_version(VersionSpec::new("gpu", Duration::from_millis(130)));
        t.bind_accel(v, AccelId::new(0)).unwrap();
        assert_eq!(t.version(v).unwrap().accel(), Some(AccelId::new(0)));
        assert!(!t.has_cpu_version());
        assert_eq!(t.versions_on_accel(AccelId::new(0)).count(), 1);
        assert!(t.bind_accel(VersionId::new(9), AccelId::new(0)).is_err());
    }

    #[test]
    fn display_mentions_name_and_id() {
        let t = Task::new(
            TaskId::new(4),
            TaskSpec::periodic("fetch", Duration::from_millis(500)),
        );
        let s = t.to_string();
        assert!(s.contains("fetch") && s.contains("T4"));
    }
}
