//! Middleware configuration.
//!
//! The paper configures YASMIN through a C header of pre-processor
//! definitions — mapping scheme, priority assignment, version selection,
//! locking and waiting strategy, worker count — fixed for the whole binary
//! (§3.1). Here the same knobs live in a validated [`Config`] value built
//! once and frozen before `start()`; switching policy means building a new
//! `Config`, the Rust analogue of recompiling with a new header.

use crate::energy::BatteryLevel;
use crate::error::{Error, Result};
use crate::ids::{TaskId, VersionId};
use crate::priority::PriorityPolicy;
use crate::time::Duration;
use crate::version::{ExecMode, VersionSpec};
use std::fmt;
use std::sync::Arc;

/// Global vs partitioned mapping of tasks to workers (`MAPPING_SCHEME`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum MappingScheme {
    /// All tasks may run on any worker; one shared ready queue (Fig. 1a).
    #[default]
    Global,
    /// Every task is pinned to a worker; per-worker ready queues (Fig. 1b).
    Partitioned,
}

impl MappingScheme {
    /// Short label for experiment tables ("G" / "P").
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            MappingScheme::Global => "G",
            MappingScheme::Partitioned => "P",
        }
    }
}

/// On-line scheduling vs off-line (table-driven) dispatch (§3.3 / §3.4).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum SchedulerClass {
    /// A scheduler thread activates and dispatches jobs at run time.
    #[default]
    Online,
    /// An on-line dispatcher follows a pre-computed time table (Fig. 1c).
    Offline,
}

/// Lock implementation used by the middleware internals (§3.5 "Locking").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum LockChoice {
    /// OS/GLibC-backed locks: better energy, kernel calls are hard to
    /// analyse for WCET.
    #[default]
    Posix,
    /// Lock-free/queue-based spinlocks (Mellor-Crummey & Scott): superior
    /// for static WCET analysis, higher energy.
    LockFree,
}

/// Waiting strategy between activations (§3.5 "Waiting").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum WaitChoice {
    /// Sleep in the kernel (default; hardly timing-analysable).
    #[default]
    Sleep,
    /// Busy-spin on the clock: precise overhead analysis, wastes energy.
    Spin,
}

/// Context handed to version-selection policies at each dispatch.
///
/// `PartialEq` lets rank caches detect that the context is unchanged
/// since the last dispatch and skip re-ranking entirely.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SelectCtx {
    /// Remaining battery, from the configured battery source.
    pub battery: BatteryLevel,
    /// Current execution mode.
    pub mode: ExecMode,
    /// Currently granted permission bits.
    pub permissions: crate::version::PermMask,
}

impl Default for SelectCtx {
    fn default() -> Self {
        SelectCtx {
            battery: BatteryLevel::FULL,
            mode: ExecMode::NORMAL,
            permissions: crate::version::PermMask::ALL,
        }
    }
}

/// Signature of a user-defined version selector (§3.2, option 5): given
/// the selection context and the candidate versions (id + spec), return
/// the preferred candidates, most preferred first.
pub type UserSelectFn =
    dyn Fn(&SelectCtx, TaskId, &[(VersionId, &VersionSpec)]) -> Vec<VersionId> + Send + Sync;

/// Signature of the battery-status callback (§3.2/§3.6): YASMIN never
/// reads the battery itself; the user supplies the platform-dependent
/// probe.
pub type BatteryFn = dyn Fn() -> BatteryLevel + Send + Sync;

/// Which version-selection policy runs at dispatch (`VERSION_SELECTION`).
///
/// Exactly one policy is active per configuration, matching the paper's
/// "only one method is effectively used at runtime, but switching is
/// possible at compile time" (§3.2).
#[derive(Clone, Default)]
pub enum VersionPolicy {
    /// Prefer the version with the shortest WCET (ties: lowest energy).
    /// This is what Figure 4's "both, scheduler decides" exploration uses.
    #[default]
    ShortestWcet,
    /// Prefer the most capable version whose `energy_budget` fits the
    /// current battery level (option 1).
    Energy,
    /// Minimise `w·time + (1000−w)·energy` with weight `w` in permille
    /// (option 2).
    EnergyTimeTradeoff {
        /// Weight of time in permille; 1000 = pure time, 0 = pure energy.
        time_weight: u16,
    },
    /// Only versions whose mode mask contains the current mode (option 3).
    Mode,
    /// Only versions whose permission mask intersects the granted
    /// permissions (option 4).
    Permission,
    /// A user-supplied ranking function (option 5).
    UserDefined(Arc<UserSelectFn>),
}

impl fmt::Debug for VersionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VersionPolicy::ShortestWcet => f.write_str("ShortestWcet"),
            VersionPolicy::Energy => f.write_str("Energy"),
            VersionPolicy::EnergyTimeTradeoff { time_weight } => {
                write!(f, "EnergyTimeTradeoff {{ time_weight: {time_weight} }}")
            }
            VersionPolicy::Mode => f.write_str("Mode"),
            VersionPolicy::Permission => f.write_str("Permission"),
            VersionPolicy::UserDefined(_) => f.write_str("UserDefined(..)"),
        }
    }
}

impl VersionPolicy {
    /// Short label for experiment tables.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            VersionPolicy::ShortestWcet => "wcet",
            VersionPolicy::Energy => "energy",
            VersionPolicy::EnergyTimeTradeoff { .. } => "tradeoff",
            VersionPolicy::Mode => "mode",
            VersionPolicy::Permission => "perm",
            VersionPolicy::UserDefined(_) => "user",
        }
    }
}

/// The full middleware configuration (the paper's `config.h`).
///
/// # Examples
///
/// ```
/// use yasmin_core::config::{Config, MappingScheme};
/// use yasmin_core::priority::PriorityPolicy;
///
/// let cfg = Config::builder()
///     .workers(2)
///     .mapping(MappingScheme::Global)
///     .priority(PriorityPolicy::EarliestDeadlineFirst)
///     .build()
///     .expect("valid config");
/// assert_eq!(cfg.workers(), 2);
/// ```
#[derive(Clone)]
pub struct Config {
    workers: usize,
    mapping: MappingScheme,
    scheduler_class: SchedulerClass,
    priority: PriorityPolicy,
    version_policy: VersionPolicy,
    locking: LockChoice,
    waiting: WaitChoice,
    preemption: bool,
    tick_override: Option<Duration>,
    max_pending_jobs: usize,
    battery_source: Option<Arc<BatteryFn>>,
    initial_mode: ExecMode,
    sharded_dispatch: bool,
    cull_missed: bool,
    enforce_wcet: bool,
    miss_trip: Option<(Duration, u32)>,
}

impl Config {
    /// Starts building a configuration.
    #[must_use]
    pub fn builder() -> ConfigBuilder {
        ConfigBuilder::default()
    }

    /// Number of worker threads / virtual CPUs (`THREADS_SIZE`).
    #[must_use]
    pub const fn workers(&self) -> usize {
        self.workers
    }

    /// Global or partitioned mapping.
    #[must_use]
    pub const fn mapping(&self) -> MappingScheme {
        self.mapping
    }

    /// On-line or off-line scheduling class.
    #[must_use]
    pub const fn scheduler_class(&self) -> SchedulerClass {
        self.scheduler_class
    }

    /// The priority assignment policy.
    #[must_use]
    pub const fn priority(&self) -> PriorityPolicy {
        self.priority
    }

    /// The version-selection policy.
    #[must_use]
    pub const fn version_policy(&self) -> &VersionPolicy {
        &self.version_policy
    }

    /// The lock implementation choice.
    #[must_use]
    pub const fn locking(&self) -> LockChoice {
        self.locking
    }

    /// The waiting strategy choice.
    #[must_use]
    pub const fn waiting(&self) -> WaitChoice {
        self.waiting
    }

    /// Whether preemption is enabled (on-line scheduling only, §3.5).
    #[must_use]
    pub const fn preemption(&self) -> bool {
        self.preemption
    }

    /// A fixed scheduler-tick period overriding the gcd of task periods.
    #[must_use]
    pub const fn tick_override(&self) -> Option<Duration> {
        self.tick_override
    }

    /// Bound on simultaneously pending (released, unfinished) jobs; sizes
    /// the pre-allocated ready queues.
    #[must_use]
    pub const fn max_pending_jobs(&self) -> usize {
        self.max_pending_jobs
    }

    /// The battery probe, if configured.
    #[must_use]
    pub fn battery_source(&self) -> Option<&Arc<BatteryFn>> {
        self.battery_source.as_ref()
    }

    /// Reads the battery through the configured probe (full if none).
    #[must_use]
    pub fn read_battery(&self) -> BatteryLevel {
        self.battery_source
            .as_ref()
            .map_or(BatteryLevel::FULL, |f| f())
    }

    /// The execution mode the system starts in.
    #[must_use]
    pub const fn initial_mode(&self) -> ExecMode {
        self.initial_mode
    }

    /// Whether drivers should run one independent engine shard per
    /// worker (partitioned mapping only) instead of a single shared
    /// engine owner. Sharded dispatch is the opt-in for the per-core
    /// scheduler threads and the multi-threaded simulation driver.
    #[must_use]
    pub const fn sharded_dispatch(&self) -> bool {
        self.sharded_dispatch
    }

    /// Whether the engine culls ready jobs whose absolute deadline has
    /// already passed at a scheduler tick (they are removed from the
    /// ready queue and counted in `EngineStats::culled` instead of being
    /// dispatched late). Off by default: the paper's scheduler always
    /// dispatches, and miss accounting then happens on completed
    /// records.
    #[must_use]
    pub const fn cull_missed(&self) -> bool {
        self.cull_missed
    }

    /// Whether the engine enforces per-job WCET budgets on the tick
    /// path: a job still running past `dispatch + selected-version WCET`
    /// has its task's `OverrunPolicy` applied and is counted in
    /// `EngineStats::overruns`. Off by default — the paper's scheduler
    /// trusts declared WCETs.
    #[must_use]
    pub const fn enforce_wcet(&self) -> bool {
        self.enforce_wcet
    }

    /// The deadline-miss trip wire `(window, budget)`: when more than
    /// `budget` deadline misses are observed within a sliding window of
    /// `window`, the engine demotes `OverrunPolicy::LogOnly`-class tasks
    /// to background priority until the miss rate recovers. `None`
    /// disables the trip wire.
    #[must_use]
    pub const fn miss_trip(&self) -> Option<(Duration, u32)> {
        self.miss_trip
    }

    /// A configuration label like `G-EDF` used in experiment tables.
    #[must_use]
    pub fn label(&self) -> String {
        match self.scheduler_class {
            SchedulerClass::Online => {
                format!("{}-{}", self.mapping.label(), self.priority.label())
            }
            SchedulerClass::Offline => "OFF".to_string(),
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config::builder().build().expect("default config is valid")
    }
}

impl fmt::Debug for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Config")
            .field("workers", &self.workers)
            .field("mapping", &self.mapping)
            .field("scheduler_class", &self.scheduler_class)
            .field("priority", &self.priority)
            .field("version_policy", &self.version_policy)
            .field("locking", &self.locking)
            .field("waiting", &self.waiting)
            .field("preemption", &self.preemption)
            .field("tick_override", &self.tick_override)
            .field("max_pending_jobs", &self.max_pending_jobs)
            .field(
                "battery_source",
                &self.battery_source.as_ref().map(|_| ".."),
            )
            .field("initial_mode", &self.initial_mode)
            .field("sharded_dispatch", &self.sharded_dispatch)
            .field("cull_missed", &self.cull_missed)
            .field("enforce_wcet", &self.enforce_wcet)
            .field("miss_trip", &self.miss_trip)
            .finish()
    }
}

/// Builder for [`Config`].
#[derive(Clone)]
pub struct ConfigBuilder {
    workers: usize,
    mapping: MappingScheme,
    scheduler_class: SchedulerClass,
    priority: PriorityPolicy,
    version_policy: VersionPolicy,
    locking: LockChoice,
    waiting: WaitChoice,
    preemption: bool,
    tick_override: Option<Duration>,
    max_pending_jobs: usize,
    battery_source: Option<Arc<BatteryFn>>,
    initial_mode: ExecMode,
    sharded_dispatch: bool,
    cull_missed: bool,
    enforce_wcet: bool,
    miss_trip: Option<(Duration, u32)>,
}

impl fmt::Debug for ConfigBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ConfigBuilder")
            .field("workers", &self.workers)
            .field("mapping", &self.mapping)
            .field("priority", &self.priority)
            .finish_non_exhaustive()
    }
}

impl Default for ConfigBuilder {
    fn default() -> Self {
        ConfigBuilder {
            workers: 1,
            mapping: MappingScheme::default(),
            scheduler_class: SchedulerClass::default(),
            priority: PriorityPolicy::default(),
            version_policy: VersionPolicy::default(),
            locking: LockChoice::default(),
            waiting: WaitChoice::default(),
            preemption: true,
            tick_override: None,
            max_pending_jobs: 1024,
            battery_source: None,
            initial_mode: ExecMode::NORMAL,
            sharded_dispatch: false,
            cull_missed: false,
            enforce_wcet: false,
            miss_trip: None,
        }
    }
}

impl ConfigBuilder {
    /// Sets the number of worker threads (virtual CPUs).
    #[must_use]
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Sets global or partitioned mapping.
    #[must_use]
    pub fn mapping(mut self, m: MappingScheme) -> Self {
        self.mapping = m;
        self
    }

    /// Sets on-line or off-line scheduling.
    #[must_use]
    pub fn scheduler_class(mut self, c: SchedulerClass) -> Self {
        self.scheduler_class = c;
        self
    }

    /// Sets the priority assignment policy.
    #[must_use]
    pub fn priority(mut self, p: PriorityPolicy) -> Self {
        self.priority = p;
        self
    }

    /// Sets the version-selection policy.
    #[must_use]
    pub fn version_policy(mut self, v: VersionPolicy) -> Self {
        self.version_policy = v;
        self
    }

    /// Sets the lock implementation.
    #[must_use]
    pub fn locking(mut self, l: LockChoice) -> Self {
        self.locking = l;
        self
    }

    /// Sets the waiting strategy.
    #[must_use]
    pub fn waiting(mut self, w: WaitChoice) -> Self {
        self.waiting = w;
        self
    }

    /// Enables or disables preemption.
    #[must_use]
    pub fn preemption(mut self, on: bool) -> Self {
        self.preemption = on;
        self
    }

    /// Overrides the scheduler-tick period (otherwise gcd of periods).
    #[must_use]
    pub fn tick(mut self, tick: Duration) -> Self {
        self.tick_override = Some(tick);
        self
    }

    /// Sets the bound on pending jobs (ready-queue capacity).
    #[must_use]
    pub fn max_pending_jobs(mut self, n: usize) -> Self {
        self.max_pending_jobs = n;
        self
    }

    /// Installs the platform-dependent battery probe.
    #[must_use]
    pub fn battery_source(mut self, f: impl Fn() -> BatteryLevel + Send + Sync + 'static) -> Self {
        self.battery_source = Some(Arc::new(f));
        self
    }

    /// Sets the initial execution mode.
    #[must_use]
    pub fn initial_mode(mut self, m: ExecMode) -> Self {
        self.initial_mode = m;
        self
    }

    /// Opts into per-worker engine sharding (requires
    /// [`MappingScheme::Partitioned`]): each worker owns an independent
    /// engine shard fed through a lock-free command mailbox, enabling
    /// one scheduler thread per core.
    #[must_use]
    pub fn sharded_dispatch(mut self, on: bool) -> Self {
        self.sharded_dispatch = on;
        self
    }

    /// Enables culling of deadline-missed ready jobs at scheduler
    /// ticks; see [`Config::cull_missed`].
    #[must_use]
    pub fn cull_missed(mut self, on: bool) -> Self {
        self.cull_missed = on;
        self
    }

    /// Enables WCET-overrun enforcement on the tick path; see
    /// [`Config::enforce_wcet`].
    #[must_use]
    pub fn enforce_wcet(mut self, on: bool) -> Self {
        self.enforce_wcet = on;
        self
    }

    /// Arms the deadline-miss trip wire: more than `budget` misses
    /// within `window` demotes `OverrunPolicy::LogOnly`-class tasks to
    /// background priority until the rate recovers; see
    /// [`Config::miss_trip`].
    #[must_use]
    pub fn miss_trip(mut self, window: Duration, budget: u32) -> Self {
        self.miss_trip = Some((window, budget));
        self
    }

    /// Validates and freezes the configuration.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] when the combination is inconsistent
    /// (zero workers, zero queue capacity, zero tick override,
    /// preemption with off-line scheduling — the paper supports
    /// "pre-emption with on-line scheduling policies only", §3.5).
    pub fn build(self) -> Result<Config> {
        if self.workers == 0 {
            return Err(Error::InvalidConfig(
                "at least one worker is required".into(),
            ));
        }
        if self.max_pending_jobs == 0 {
            return Err(Error::InvalidConfig(
                "max_pending_jobs must be positive".into(),
            ));
        }
        if let Some(t) = self.tick_override {
            if t.is_zero() {
                return Err(Error::InvalidConfig(
                    "tick override must be positive".into(),
                ));
            }
        }
        if self.scheduler_class == SchedulerClass::Offline && self.preemption {
            return Err(Error::InvalidConfig(
                "preemption is supported with on-line scheduling policies only".into(),
            ));
        }
        if self.sharded_dispatch && self.mapping != MappingScheme::Partitioned {
            return Err(Error::InvalidConfig(
                "sharded dispatch needs per-worker ready queues: use partitioned mapping".into(),
            ));
        }
        if let Some((window, _)) = self.miss_trip {
            if window.is_zero() {
                return Err(Error::InvalidConfig(
                    "miss-trip window must be positive".into(),
                ));
            }
        }
        Ok(Config {
            workers: self.workers,
            mapping: self.mapping,
            scheduler_class: self.scheduler_class,
            priority: self.priority,
            version_policy: self.version_policy,
            locking: self.locking,
            waiting: self.waiting,
            preemption: self.preemption,
            tick_override: self.tick_override,
            max_pending_jobs: self.max_pending_jobs,
            battery_source: self.battery_source,
            initial_mode: self.initial_mode,
            sharded_dispatch: self.sharded_dispatch,
            cull_missed: self.cull_missed,
            enforce_wcet: self.enforce_wcet,
            miss_trip: self.miss_trip,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        let c = Config::default();
        assert_eq!(c.workers(), 1);
        assert_eq!(c.mapping(), MappingScheme::Global);
        assert!(c.preemption());
        assert_eq!(c.read_battery(), BatteryLevel::FULL);
    }

    #[test]
    fn builder_sets_all_fields() {
        let c = Config::builder()
            .workers(3)
            .mapping(MappingScheme::Partitioned)
            .scheduler_class(SchedulerClass::Online)
            .priority(PriorityPolicy::RateMonotonic)
            .version_policy(VersionPolicy::Energy)
            .locking(LockChoice::LockFree)
            .waiting(WaitChoice::Spin)
            .preemption(false)
            .tick(Duration::from_millis(1))
            .max_pending_jobs(64)
            .initial_mode(ExecMode::new(1))
            .battery_source(|| BatteryLevel::from_percent(50))
            .build()
            .unwrap();
        assert_eq!(c.workers(), 3);
        assert_eq!(c.mapping(), MappingScheme::Partitioned);
        assert_eq!(c.priority(), PriorityPolicy::RateMonotonic);
        assert_eq!(c.version_policy().label(), "energy");
        assert_eq!(c.locking(), LockChoice::LockFree);
        assert_eq!(c.waiting(), WaitChoice::Spin);
        assert!(!c.preemption());
        assert_eq!(c.tick_override(), Some(Duration::from_millis(1)));
        assert_eq!(c.max_pending_jobs(), 64);
        assert_eq!(c.initial_mode(), ExecMode::new(1));
        assert_eq!(c.read_battery(), BatteryLevel::from_percent(50));
        assert_eq!(c.label(), "P-RM");
    }

    #[test]
    fn zero_workers_rejected() {
        assert!(matches!(
            Config::builder().workers(0).build(),
            Err(Error::InvalidConfig(_))
        ));
    }

    #[test]
    fn offline_with_preemption_rejected() {
        let r = Config::builder()
            .scheduler_class(SchedulerClass::Offline)
            .preemption(true)
            .build();
        assert!(matches!(r, Err(Error::InvalidConfig(_))));
        // And without preemption it is fine.
        assert!(Config::builder()
            .scheduler_class(SchedulerClass::Offline)
            .preemption(false)
            .build()
            .is_ok());
    }

    #[test]
    fn sharded_dispatch_requires_partitioned() {
        assert!(matches!(
            Config::builder().sharded_dispatch(true).build(),
            Err(Error::InvalidConfig(_))
        ));
        let c = Config::builder()
            .workers(2)
            .mapping(MappingScheme::Partitioned)
            .sharded_dispatch(true)
            .build()
            .unwrap();
        assert!(c.sharded_dispatch());
        assert!(!Config::default().sharded_dispatch());
    }

    #[test]
    fn zero_tick_rejected() {
        assert!(matches!(
            Config::builder().tick(Duration::ZERO).build(),
            Err(Error::InvalidConfig(_))
        ));
    }

    #[test]
    fn labels() {
        let c = Config::builder()
            .priority(PriorityPolicy::EarliestDeadlineFirst)
            .build()
            .unwrap();
        assert_eq!(c.label(), "G-EDF");
        let c = Config::builder()
            .scheduler_class(SchedulerClass::Offline)
            .preemption(false)
            .build()
            .unwrap();
        assert_eq!(c.label(), "OFF");
    }

    #[test]
    fn version_policy_debug_and_labels() {
        assert_eq!(format!("{:?}", VersionPolicy::ShortestWcet), "ShortestWcet");
        let p = VersionPolicy::UserDefined(Arc::new(|_, _, _| Vec::new()));
        assert_eq!(format!("{p:?}"), "UserDefined(..)");
        assert_eq!(p.label(), "user");
        assert_eq!(
            VersionPolicy::EnergyTimeTradeoff { time_weight: 700 }.label(),
            "tradeoff"
        );
    }
}
