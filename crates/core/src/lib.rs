//! # yasmin-core
//!
//! Foundational types for **YASMIN** (*Yet Another Scheduling MIddleware
//! for exploratioN*), a user-space real-time middleware for COTS
//! heterogeneous platforms, reproduced from Rouxel, Altmeyer & Grelck
//! (Middleware 2021, arXiv:2108.00730).
//!
//! This crate holds everything the rest of the workspace agrees on:
//!
//! * [`time`] — nanosecond [`time::Instant`]/[`time::Duration`] newtypes,
//!   clocks, gcd/lcm (scheduler tick & hyperperiod);
//! * [`ids`] — typed identifiers (`TaskId`, `VersionId`, `AccelId`, …);
//! * [`task`] — sporadic/periodic/aperiodic tasks with implicit,
//!   constrained or arbitrary deadlines;
//! * [`version`] — multi-version tasks with per-version WCET, energy,
//!   accelerator binding and selection properties;
//! * [`graph`] — DAG task graphs with FIFO [`channel`]s and the
//!   declaration [`graph::TaskSetBuilder`] mirroring the paper's API;
//! * [`accel`] — hardware accelerator declarations;
//! * [`config`] — the middleware configuration (the paper's `config.h`);
//! * [`platform`] — COTS platform descriptions (Odroid-XU4, Apalis TK1);
//! * [`priority`] — priorities and assignment policies (RM/DM/EDF/user);
//! * [`energy`] — power/energy/battery quantities;
//! * [`stats`] — min/max/avg and percentile accumulators;
//! * [`error`] — the shared error type.
//!
//! # Example
//!
//! Declaring the paper's running example (a diamond graph with a
//! two-version task) and validating it:
//!
//! ```
//! use yasmin_core::graph::TaskSetBuilder;
//! use yasmin_core::task::TaskSpec;
//! use yasmin_core::time::Duration;
//! use yasmin_core::version::VersionSpec;
//! use yasmin_core::energy::Energy;
//!
//! # fn main() -> Result<(), yasmin_core::error::Error> {
//! let mut b = TaskSetBuilder::new();
//! let fork = b.task_decl(TaskSpec::periodic("fork", Duration::from_millis(250)))?;
//! let left = b.task_decl(TaskSpec::graph_node("left"))?;
//! let accel = b.hwaccel_decl("quantum_rand_num_generator");
//!
//! b.version_decl(fork, VersionSpec::new("fork", Duration::from_micros(50)))?;
//! b.version_decl(left, VersionSpec::new("left_v1", Duration::from_micros(80))
//!     .with_energy_budget(Energy::from_millijoules(5)))?;
//! let lv2 = b.version_decl(left, VersionSpec::new("left_v2", Duration::from_micros(30))
//!     .with_energy_budget(Energy::from_millijoules(12)))?;
//! b.hwaccel_use(left, lv2, accel)?;
//!
//! let ch = b.channel_decl("fl", 1, 4);
//! b.channel_connect(fork, left, ch)?;
//! let set = b.build()?;
//! assert_eq!(set.task(left)?.versions().len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accel;
pub mod channel;
pub mod config;
pub mod energy;
pub mod error;
pub mod graph;
pub mod ids;
pub mod platform;
pub mod priority;
pub mod stats;
pub mod task;
pub mod time;
pub mod version;

pub use config::Config;
pub use error::{Error, Result};
pub use graph::{TaskSet, TaskSetBuilder};
pub use ids::{AccelId, ChannelId, CoreId, JobId, TaskId, VersionId, WorkerId};
pub use task::{ActivationKind, DeadlineKind, Task, TaskSpec};
pub use version::VersionSpec;
