//! Typed identifiers for every entity YASMIN manages.
//!
//! The paper's C API hands out opaque `TID` / `VID` / `HID` / `CID`
//! integers (Table 1); here each gets its own newtype so tasks, versions,
//! accelerators, channels, jobs and workers can never be confused
//! (C-NEWTYPE).

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal, $repr:ty) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name($repr);

        impl $name {
            /// Creates an identifier from its raw index.
            #[must_use]
            pub const fn new(raw: $repr) -> Self {
                $name(raw)
            }

            /// The raw index backing this identifier.
            #[must_use]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// The raw value.
            #[must_use]
            pub const fn raw(self) -> $repr {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_type!(
    /// Identifies a task (`TID` in the paper's API).
    TaskId,
    "T",
    u32
);

id_type!(
    /// Identifies a version *within its task* (`VID` in the paper's API).
    ///
    /// Version identifiers are indices into [`crate::task::Task::versions`];
    /// a `(TaskId, VersionId)` pair is globally unique.
    VersionId,
    "v",
    u16
);

id_type!(
    /// Identifies a declared hardware accelerator (`HID`).
    AccelId,
    "H",
    u16
);

id_type!(
    /// Identifies a FIFO channel connecting two tasks (`CID`).
    ChannelId,
    "C",
    u32
);

id_type!(
    /// Identifies a worker thread, i.e. a *virtual CPU* pinned to a core
    /// (§3.3).
    WorkerId,
    "W",
    u16
);

id_type!(
    /// Identifies a physical core of the platform model.
    CoreId,
    "c",
    u16
);

id_type!(
    /// Identifies a *tenant*: a task-set namespace admitted into a running
    /// schedule.
    ///
    /// Tenant 0 is always the task set the engine was built with; each
    /// successful on-line admission allocates the next id in order. Ids are
    /// never reused, even after the tenant is retired.
    TenantId,
    "N",
    u32
);

/// Identifies one activation (job) of a task. Monotonically increasing and
/// globally unique within a run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct JobId(u64);

impl JobId {
    /// Creates a job identifier from its raw sequence number.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        JobId(raw)
    }

    /// The raw sequence number.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "J{}", self.0)
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "J{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip() {
        let t = TaskId::new(42);
        assert_eq!(t.index(), 42);
        assert_eq!(t.raw(), 42);
        assert_eq!(usize::from(t), 42);
        assert_eq!(format!("{t}"), "T42");
        assert_eq!(format!("{t:?}"), "T42");
    }

    #[test]
    fn ids_are_distinct_types() {
        // This is a compile-time property; here we just confirm the formats.
        assert_eq!(VersionId::new(1).to_string(), "v1");
        assert_eq!(AccelId::new(2).to_string(), "H2");
        assert_eq!(ChannelId::new(3).to_string(), "C3");
        assert_eq!(WorkerId::new(4).to_string(), "W4");
        assert_eq!(CoreId::new(5).to_string(), "c5");
        assert_eq!(JobId::new(6).to_string(), "J6");
    }

    #[test]
    fn ids_order_by_raw_value() {
        assert!(TaskId::new(1) < TaskId::new(2));
        assert!(JobId::new(9) > JobId::new(3));
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(TaskId::default(), TaskId::new(0));
        assert_eq!(JobId::default().raw(), 0);
    }
}
