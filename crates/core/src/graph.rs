//! Task sets and DAG task graphs.
//!
//! [`TaskSetBuilder`] mirrors the declaration half of the paper's API
//! (Table 1): `task_decl`, `version_decl`, `hwaccel_decl`, `hwaccel_use`,
//! `channel_decl`, `channel_connect`. [`TaskSetBuilder::build`] validates
//! the whole declaration (acyclicity, deadline schemes, channel wiring) and
//! freezes it into an immutable [`TaskSet`] that the scheduler consumes.

use crate::accel::AccelSpec;
use crate::channel::{BackpressurePolicy, ChannelSpec, Edge};
use crate::error::{Error, Result};
use crate::ids::{AccelId, ChannelId, TaskId, VersionId};
use crate::priority::Priority;
use crate::task::{Task, TaskSpec};
use crate::time::{gcd_all, lcm_all, Duration};
use crate::version::VersionSpec;

/// An immutable, validated set of tasks, versions, accelerators and
/// channels.
///
/// # Examples
///
/// The diamond graph from the paper's Listing 2:
///
/// ```
/// use yasmin_core::graph::TaskSetBuilder;
/// use yasmin_core::task::TaskSpec;
/// use yasmin_core::time::Duration;
/// use yasmin_core::version::VersionSpec;
///
/// # fn main() -> Result<(), yasmin_core::error::Error> {
/// let mut b = TaskSetBuilder::new();
/// let fork = b.task_decl(TaskSpec::periodic("fork", Duration::from_millis(250)))?;
/// let left = b.task_decl(TaskSpec::graph_node("left"))?;
/// let right = b.task_decl(TaskSpec::graph_node("right"))?;
/// let join = b.task_decl(TaskSpec::graph_node("join"))?;
/// for t in [fork, left, right, join] {
///     b.version_decl(t, VersionSpec::new("v1", Duration::from_micros(100)))?;
/// }
/// let fl = b.channel_decl("fl", 0, 1);
/// let fr = b.channel_decl("fr", 1, 8);
/// let lj = b.channel_decl("lj", 1, 4);
/// let rj = b.channel_decl("rj", 2, 4);
/// b.channel_connect(fork, left, fl)?;
/// b.channel_connect(fork, right, fr)?;
/// b.channel_connect(left, join, lj)?;
/// b.channel_connect(right, join, rj)?;
/// let set = b.build()?;
/// assert_eq!(set.roots().count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct TaskSet {
    tasks: Vec<Task>,
    accels: Vec<AccelSpec>,
    channels: Vec<ChannelSpec>,
    edges: Vec<Edge>,
    /// `preds[t]` = indices into `edges` entering task `t`.
    preds: Vec<Vec<usize>>,
    /// `succs[t]` = indices into `edges` leaving task `t`.
    succs: Vec<Vec<usize>>,
    topo: Vec<TaskId>,
}

impl TaskSet {
    /// All tasks, indexable by [`TaskId`].
    #[must_use]
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Number of tasks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` if the set has no tasks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The task with the given id.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownTask`] if out of range.
    pub fn task(&self, id: TaskId) -> Result<&Task> {
        self.tasks.get(id.index()).ok_or(Error::UnknownTask(id))
    }

    /// All declared accelerators.
    #[must_use]
    pub fn accels(&self) -> &[AccelSpec] {
        &self.accels
    }

    /// The accelerator with the given id.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownAccel`] if out of range.
    pub fn accel(&self, id: AccelId) -> Result<&AccelSpec> {
        self.accels.get(id.index()).ok_or(Error::UnknownAccel(id))
    }

    /// All declared channels.
    #[must_use]
    pub fn channels(&self) -> &[ChannelSpec] {
        &self.channels
    }

    /// The channel with the given id.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownChannel`] if out of range.
    pub fn channel(&self, id: ChannelId) -> Result<&ChannelSpec> {
        self.channels
            .get(id.index())
            .ok_or(Error::UnknownChannel(id))
    }

    /// All graph edges.
    #[must_use]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Edges entering `t` (its data dependencies).
    pub fn in_edges(&self, t: TaskId) -> impl Iterator<Item = &Edge> {
        self.preds
            .get(t.index())
            .into_iter()
            .flatten()
            .map(move |&i| &self.edges[i])
    }

    /// Edges leaving `t`.
    pub fn out_edges(&self, t: TaskId) -> impl Iterator<Item = &Edge> {
        self.succs
            .get(t.index())
            .into_iter()
            .flatten()
            .map(move |&i| &self.edges[i])
    }

    /// Number of incoming edges of `t`.
    #[must_use]
    pub fn in_degree(&self, t: TaskId) -> usize {
        self.preds.get(t.index()).map_or(0, Vec::len)
    }

    /// Tasks without incoming edges — the graph roots, which carry the
    /// activation pattern (§3.3).
    pub fn roots(&self) -> impl Iterator<Item = &Task> {
        self.tasks.iter().filter(|t| self.in_degree(t.id()) == 0)
    }

    /// Inner graph nodes (tasks with at least one predecessor).
    pub fn inner_nodes(&self) -> impl Iterator<Item = &Task> {
        self.tasks.iter().filter(|t| self.in_degree(t.id()) > 0)
    }

    /// A topological ordering of all tasks (roots first).
    #[must_use]
    pub fn topological_order(&self) -> &[TaskId] {
        &self.topo
    }

    /// The root task whose graph (reachable successors) contains `t`.
    ///
    /// For a forest of DAGs every task belongs to exactly one weakly
    /// connected component; this returns the smallest-id root of that
    /// component.
    #[must_use]
    pub fn component_root(&self, t: TaskId) -> TaskId {
        // Walk predecessors until a root; for joins pick the smallest.
        let mut current = t;
        loop {
            let mut best: Option<TaskId> = None;
            for e in self.in_edges(current) {
                best = Some(match best {
                    None => e.src,
                    Some(b) => b.min(e.src),
                });
            }
            match best {
                None => return current,
                Some(p) => current = p,
            }
        }
    }

    /// GCD of all recurring-task periods — the scheduler thread's
    /// activation period (§3.3). `None` if there is no recurring task.
    #[must_use]
    pub fn scheduler_tick(&self) -> Option<Duration> {
        gcd_all(
            self.tasks
                .iter()
                .filter(|t| t.spec().kind().is_recurring())
                .map(|t| t.spec().period()),
        )
    }

    /// LCM of all recurring-task periods (the hyperperiod). `None` if
    /// there is no recurring task.
    #[must_use]
    pub fn hyperperiod(&self) -> Option<Duration> {
        lcm_all(
            self.tasks
                .iter()
                .filter(|t| t.spec().kind().is_recurring())
                .map(|t| t.spec().period()),
        )
    }

    /// Total utilisation using each task's largest-WCET version; inner
    /// graph nodes inherit the period of their component root.
    #[must_use]
    pub fn total_utilization_max(&self) -> f64 {
        self.tasks
            .iter()
            .filter_map(|t| {
                let period = self.effective_period(t.id())?;
                if period.is_zero() {
                    return None;
                }
                Some(t.max_wcet().as_nanos() as f64 / period.as_nanos() as f64)
            })
            .sum()
    }

    /// The activation period governing `t`: its own period for roots, the
    /// component root's period for inner nodes ("the whole graph is
    /// considered sporadic or periodic", §2). `None` for aperiodic roots.
    #[must_use]
    pub fn effective_period(&self, t: TaskId) -> Option<Duration> {
        let root = self.component_root(t);
        let spec = self.tasks.get(root.index())?.spec();
        if spec.kind().is_recurring() {
            Some(spec.period())
        } else {
            None
        }
    }

    /// The relative deadline governing `t`: its own if declared, otherwise
    /// the component root's (graph-level deadline, §2).
    #[must_use]
    pub fn effective_deadline(&self, t: TaskId) -> Duration {
        let own = self.tasks[t.index()].spec().relative_deadline();
        if own != Duration::MAX {
            return own;
        }
        let root = self.component_root(t);
        self.tasks[root.index()].spec().relative_deadline()
    }

    /// All tasks reachable from `root` (including it), in topological
    /// order.
    #[must_use]
    pub fn component_of(&self, root: TaskId) -> Vec<TaskId> {
        let mut member = vec![false; self.tasks.len()];
        member[root.index()] = true;
        for &t in &self.topo {
            if member[t.index()] {
                for e in self.out_edges(t) {
                    member[e.dst.index()] = true;
                }
            }
        }
        self.topo
            .iter()
            .copied()
            .filter(|t| member[t.index()])
            .collect()
    }

    /// Appends an independently-built `tenant` task set to `self`,
    /// producing the merged set used by on-line admission
    /// (`yasmin_sched::admission`).
    ///
    /// The merge is strictly *append-only*: every task, version,
    /// accelerator, channel and edge of `self` keeps its id, so a scheduler
    /// built against `self` can adopt the result in place. The tenant's
    /// entities are re-identified by offsetting — its `TaskId`s by
    /// [`TaskSet::len`], its `AccelId`s / `ChannelId`s by the respective
    /// counts — and its version accelerator bindings are rewritten to the
    /// offset ids. No edges are created between the two sets: tenants are
    /// disjoint namespaces, and the concatenated topological orders remain
    /// valid.
    ///
    /// Accelerators are *not* shared across tenants; a tenant wanting a
    /// GPU declares its own [`AccelSpec`], which admission maps to distinct
    /// arbitration state.
    ///
    /// # Errors
    ///
    /// [`Error::CapacityExceeded`] if the combined counts overflow the id
    /// spaces (`u32` tasks/channels, `u16` accelerators).
    pub fn extended(&self, tenant: &TaskSet) -> Result<TaskSet> {
        let task_off = self.tasks.len();
        let accel_off = self.accels.len();
        let chan_off = self.channels.len();
        let edge_off = self.edges.len();
        if u32::try_from(task_off + tenant.tasks.len()).is_err() {
            return Err(Error::CapacityExceeded {
                what: "task ids",
                capacity: u32::MAX as usize,
            });
        }
        if u16::try_from(accel_off + tenant.accels.len()).is_err() {
            return Err(Error::CapacityExceeded {
                what: "accelerator ids",
                capacity: u16::MAX as usize,
            });
        }
        if u32::try_from(chan_off + tenant.channels.len()).is_err() {
            return Err(Error::CapacityExceeded {
                what: "channel ids",
                capacity: u32::MAX as usize,
            });
        }

        let mut tasks = self.tasks.clone();
        for t in &tenant.tasks {
            let mut task = Task::new(
                TaskId::new((task_off + t.id().index()) as u32),
                t.spec().clone(),
            );
            for v in t.versions() {
                let mut spec = v.clone();
                if let Some(a) = spec.accel() {
                    spec = spec.with_accel(AccelId::new((accel_off + a.index()) as u16));
                }
                task.push_version(spec);
            }
            tasks.push(task);
        }

        let mut accels = self.accels.clone();
        for a in &tenant.accels {
            accels.push(
                AccelSpec::new(AccelId::new((accel_off + a.id().index()) as u16), a.name())
                    .with_active_power(a.active_power()),
            );
        }

        let mut channels = self.channels.clone();
        for c in &tenant.channels {
            // `with_id` preserves every other field (capacity, element
            // size, high-priority lane) across the id offset.
            channels.push(
                c.clone()
                    .with_id(ChannelId::new((chan_off + c.id().index()) as u32)),
            );
        }

        let mut edges = self.edges.clone();
        for e in &tenant.edges {
            edges.push(Edge {
                src: TaskId::new((task_off + e.src.index()) as u32),
                dst: TaskId::new((task_off + e.dst.index()) as u32),
                channel: ChannelId::new((chan_off + e.channel.index()) as u32),
            });
        }

        let mut preds = self.preds.clone();
        let mut succs = self.succs.clone();
        preds.extend(
            tenant
                .preds
                .iter()
                .map(|p| p.iter().map(|&i| edge_off + i).collect()),
        );
        succs.extend(
            tenant
                .succs
                .iter()
                .map(|s| s.iter().map(|&i| edge_off + i).collect()),
        );

        let mut topo = self.topo.clone();
        topo.extend(
            tenant
                .topo
                .iter()
                .map(|t| TaskId::new((task_off + t.index()) as u32)),
        );

        Ok(TaskSet {
            tasks,
            accels,
            channels,
            edges,
            preds,
            succs,
            topo,
        })
    }
}

/// Fluent builder mirroring the paper's declaration API (Table 1).
#[derive(Debug, Default)]
pub struct TaskSetBuilder {
    tasks: Vec<Task>,
    accels: Vec<AccelSpec>,
    channels: Vec<ChannelSpec>,
    edges: Vec<Edge>,
    connected: Vec<bool>,
}

impl TaskSetBuilder {
    /// An empty builder.
    #[must_use]
    pub fn new() -> Self {
        TaskSetBuilder::default()
    }

    /// Declares a task (`yas_task_decl`).
    ///
    /// # Errors
    ///
    /// Returns spec-validation errors such as [`Error::ZeroPeriod`].
    pub fn task_decl(&mut self, spec: TaskSpec) -> Result<TaskId> {
        let id = TaskId::new(u32::try_from(self.tasks.len()).expect("< 2^32 tasks"));
        spec.validate(id)?;
        self.tasks.push(Task::new(id, spec));
        Ok(id)
    }

    /// Adds a version to a task (`yas_version_decl`).
    ///
    /// # Errors
    ///
    /// [`Error::UnknownTask`] or [`Error::UnknownAccel`] if the version
    /// references an undeclared accelerator.
    pub fn version_decl(&mut self, task: TaskId, version: VersionSpec) -> Result<VersionId> {
        if let Some(a) = version.accel() {
            if a.index() >= self.accels.len() {
                return Err(Error::UnknownAccel(a));
            }
        }
        let t = self
            .tasks
            .get_mut(task.index())
            .ok_or(Error::UnknownTask(task))?;
        Ok(t.push_version(version))
    }

    /// Declares a hardware accelerator (`yas_hwaccel_decl`).
    pub fn hwaccel_decl(&mut self, name: impl Into<String>) -> AccelId {
        let id = AccelId::new(u16::try_from(self.accels.len()).expect("< 65536 accels"));
        self.accels.push(AccelSpec::new(id, name));
        id
    }

    /// Declares an accelerator with a power figure for the energy model.
    pub fn hwaccel_decl_with_power(
        &mut self,
        name: impl Into<String>,
        power: crate::energy::Power,
    ) -> AccelId {
        let id = AccelId::new(u16::try_from(self.accels.len()).expect("< 65536 accels"));
        self.accels
            .push(AccelSpec::new(id, name).with_active_power(power));
        id
    }

    /// Links an accelerator to a task version (`yas_hwaccel_use`).
    ///
    /// # Errors
    ///
    /// [`Error::UnknownTask`], [`Error::UnknownVersion`] or
    /// [`Error::UnknownAccel`].
    pub fn hwaccel_use(&mut self, task: TaskId, version: VersionId, accel: AccelId) -> Result<()> {
        if accel.index() >= self.accels.len() {
            return Err(Error::UnknownAccel(accel));
        }
        let t = self
            .tasks
            .get_mut(task.index())
            .ok_or(Error::UnknownTask(task))?;
        t.bind_accel(version, accel)
    }

    /// Declares a FIFO channel (`yas_channel_decl`). `capacity == 0`
    /// declares a pure precedence dependency.
    pub fn channel_decl(
        &mut self,
        name: impl Into<String>,
        capacity: usize,
        elem_bytes: usize,
    ) -> ChannelId {
        let id = ChannelId::new(u32::try_from(self.channels.len()).expect("< 2^32 channels"));
        self.channels
            .push(ChannelSpec::new(id, name, capacity, elem_bytes));
        self.connected.push(false);
        id
    }

    /// Declares a FIFO channel with an overload-shedding
    /// [`BackpressurePolicy`] applied when a token arrives on a full
    /// channel (`channel_decl` defaults to
    /// [`BackpressurePolicy::Reject`]: count, never shed).
    pub fn channel_decl_shedding(
        &mut self,
        name: impl Into<String>,
        capacity: usize,
        elem_bytes: usize,
        policy: BackpressurePolicy,
    ) -> ChannelId {
        let id = ChannelId::new(u32::try_from(self.channels.len()).expect("< 2^32 channels"));
        self.channels
            .push(ChannelSpec::new(id, name, capacity, elem_bytes).with_backpressure(policy));
        self.connected.push(false);
        id
    }

    /// Declares a FIFO channel with an additional **high-priority lane**
    /// of `high_capacity` slots. While the high lane is non-empty the
    /// consuming task inherits `ceiling` (smaller = more urgent) through
    /// the scheduler's PIP machinery; the boost is released when the lane
    /// drains. See `yasmin_sched::msg` for the runtime endpoints.
    pub fn channel_decl_prioritized(
        &mut self,
        name: impl Into<String>,
        capacity: usize,
        elem_bytes: usize,
        high_capacity: usize,
        ceiling: Priority,
    ) -> ChannelId {
        let id = ChannelId::new(u32::try_from(self.channels.len()).expect("< 2^32 channels"));
        self.channels.push(
            ChannelSpec::new(id, name, capacity, elem_bytes).with_high_lane(high_capacity, ceiling),
        );
        self.connected.push(false);
        id
    }

    /// Connects `src → dst` through `channel` (`yas_channel_connect`).
    ///
    /// # Errors
    ///
    /// [`Error::UnknownTask`], [`Error::UnknownChannel`], or
    /// [`Error::ChannelAlreadyConnected`] — each channel wires exactly one
    /// producer/consumer pair.
    pub fn channel_connect(&mut self, src: TaskId, dst: TaskId, channel: ChannelId) -> Result<()> {
        if src.index() >= self.tasks.len() {
            return Err(Error::UnknownTask(src));
        }
        if dst.index() >= self.tasks.len() {
            return Err(Error::UnknownTask(dst));
        }
        let flag = self
            .connected
            .get_mut(channel.index())
            .ok_or(Error::UnknownChannel(channel))?;
        if *flag {
            return Err(Error::ChannelAlreadyConnected(channel));
        }
        *flag = true;
        self.edges.push(Edge { src, dst, channel });
        Ok(())
    }

    /// Number of tasks declared so far.
    #[must_use]
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Validates the declaration and freezes it.
    ///
    /// # Errors
    ///
    /// * [`Error::NoVersions`] — a task without any version;
    /// * [`Error::GraphCycle`] — the connections are not acyclic;
    /// * [`Error::ChannelNotConnected`] — a declared but unwired channel;
    /// * [`Error::InnerNodeWithPeriod`] — an inner graph node carrying its
    ///   own activation period.
    pub fn build(self) -> Result<TaskSet> {
        let n = self.tasks.len();
        for t in &self.tasks {
            if t.versions().is_empty() {
                return Err(Error::NoVersions(t.id()));
            }
        }
        for (i, c) in self.connected.iter().enumerate() {
            if !*c {
                return Err(Error::ChannelNotConnected(ChannelId::new(i as u32)));
            }
        }

        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, e) in self.edges.iter().enumerate() {
            preds[e.dst.index()].push(i);
            succs[e.src.index()].push(i);
        }

        // Inner nodes must not declare their own activation period.
        for t in &self.tasks {
            if !preds[t.id().index()].is_empty() && t.spec().kind().is_recurring() {
                return Err(Error::InnerNodeWithPeriod(t.id()));
            }
        }

        // Kahn's algorithm: detects cycles and yields the topo order.
        let mut indeg: Vec<usize> = preds.iter().map(Vec::len).collect();
        let mut queue: std::collections::VecDeque<usize> =
            (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(i) = queue.pop_front() {
            topo.push(TaskId::new(i as u32));
            for &ei in &succs[i] {
                let d = self.edges[ei].dst.index();
                indeg[d] -= 1;
                if indeg[d] == 0 {
                    queue.push_back(d);
                }
            }
        }
        if topo.len() != n {
            let culprit = (0..n)
                .find(|&i| indeg[i] > 0)
                .map(|i| TaskId::new(i as u32))
                .unwrap_or_default();
            return Err(Error::GraphCycle { task: culprit });
        }

        Ok(TaskSet {
            tasks: self.tasks,
            accels: self.accels,
            channels: self.channels,
            edges: self.edges,
            preds,
            succs,
            topo,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::version::VersionSpec;

    fn simple_version() -> VersionSpec {
        VersionSpec::new("v", Duration::from_micros(100))
    }

    fn diamond() -> TaskSet {
        let mut b = TaskSetBuilder::new();
        let fork = b
            .task_decl(TaskSpec::periodic("fork", Duration::from_millis(250)))
            .unwrap();
        let left = b.task_decl(TaskSpec::graph_node("left")).unwrap();
        let right = b.task_decl(TaskSpec::graph_node("right")).unwrap();
        let join = b.task_decl(TaskSpec::graph_node("join")).unwrap();
        for t in [fork, left, right, join] {
            b.version_decl(t, simple_version()).unwrap();
        }
        let fl = b.channel_decl("fl", 0, 1);
        let fr = b.channel_decl("fr", 1, 8);
        let lj = b.channel_decl("lj", 1, 4);
        let rj = b.channel_decl("rj", 2, 4);
        b.channel_connect(fork, left, fl).unwrap();
        b.channel_connect(fork, right, fr).unwrap();
        b.channel_connect(left, join, lj).unwrap();
        b.channel_connect(right, join, rj).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn diamond_structure() {
        let s = diamond();
        assert_eq!(s.len(), 4);
        assert_eq!(s.roots().count(), 1);
        assert_eq!(s.inner_nodes().count(), 3);
        assert_eq!(s.in_degree(TaskId::new(3)), 2);
        assert_eq!(s.out_edges(TaskId::new(0)).count(), 2);
        let topo = s.topological_order();
        assert_eq!(topo[0], TaskId::new(0));
        assert_eq!(topo[3], TaskId::new(3));
    }

    #[test]
    fn component_root_and_effective_period() {
        let s = diamond();
        for t in 0..4 {
            assert_eq!(s.component_root(TaskId::new(t)), TaskId::new(0));
            assert_eq!(
                s.effective_period(TaskId::new(t)),
                Some(Duration::from_millis(250))
            );
            assert_eq!(
                s.effective_deadline(TaskId::new(t)),
                Duration::from_millis(250)
            );
        }
        assert_eq!(s.component_of(TaskId::new(0)).len(), 4);
    }

    #[test]
    fn cycle_detection() {
        let mut b = TaskSetBuilder::new();
        let a = b.task_decl(TaskSpec::graph_node("a")).unwrap();
        let c = b.task_decl(TaskSpec::graph_node("c")).unwrap();
        b.version_decl(a, simple_version()).unwrap();
        b.version_decl(c, simple_version()).unwrap();
        let ch1 = b.channel_decl("x", 1, 1);
        let ch2 = b.channel_decl("y", 1, 1);
        b.channel_connect(a, c, ch1).unwrap();
        b.channel_connect(c, a, ch2).unwrap();
        assert!(matches!(b.build(), Err(Error::GraphCycle { .. })));
    }

    #[test]
    fn missing_version_rejected() {
        let mut b = TaskSetBuilder::new();
        b.task_decl(TaskSpec::periodic("t", Duration::from_millis(1)))
            .unwrap();
        assert_eq!(b.build().unwrap_err(), Error::NoVersions(TaskId::new(0)));
    }

    #[test]
    fn unconnected_channel_rejected() {
        let mut b = TaskSetBuilder::new();
        let t = b
            .task_decl(TaskSpec::periodic("t", Duration::from_millis(1)))
            .unwrap();
        b.version_decl(t, simple_version()).unwrap();
        b.channel_decl("dangling", 1, 1);
        assert_eq!(
            b.build().unwrap_err(),
            Error::ChannelNotConnected(ChannelId::new(0))
        );
    }

    #[test]
    fn double_connect_rejected() {
        let mut b = TaskSetBuilder::new();
        let a = b
            .task_decl(TaskSpec::periodic("a", Duration::from_millis(1)))
            .unwrap();
        let c = b.task_decl(TaskSpec::graph_node("c")).unwrap();
        b.version_decl(a, simple_version()).unwrap();
        b.version_decl(c, simple_version()).unwrap();
        let ch = b.channel_decl("x", 1, 1);
        b.channel_connect(a, c, ch).unwrap();
        assert_eq!(
            b.channel_connect(a, c, ch).unwrap_err(),
            Error::ChannelAlreadyConnected(ch)
        );
    }

    #[test]
    fn inner_node_with_period_rejected() {
        let mut b = TaskSetBuilder::new();
        let a = b
            .task_decl(TaskSpec::periodic("a", Duration::from_millis(1)))
            .unwrap();
        let c = b
            .task_decl(TaskSpec::periodic("c", Duration::from_millis(2)))
            .unwrap();
        b.version_decl(a, simple_version()).unwrap();
        b.version_decl(c, simple_version()).unwrap();
        let ch = b.channel_decl("x", 1, 1);
        b.channel_connect(a, c, ch).unwrap();
        assert_eq!(b.build().unwrap_err(), Error::InnerNodeWithPeriod(c));
    }

    #[test]
    fn accel_use_binds_version() {
        let mut b = TaskSetBuilder::new();
        let t = b
            .task_decl(TaskSpec::periodic("t", Duration::from_millis(10)))
            .unwrap();
        let gpu = b.hwaccel_decl("gpu");
        let v = b.version_decl(t, simple_version()).unwrap();
        b.hwaccel_use(t, v, gpu).unwrap();
        let s = b.build().unwrap();
        assert_eq!(s.task(t).unwrap().version(v).unwrap().accel(), Some(gpu));
        assert_eq!(s.accel(gpu).unwrap().name(), "gpu");
    }

    #[test]
    fn version_with_undeclared_accel_rejected() {
        let mut b = TaskSetBuilder::new();
        let t = b
            .task_decl(TaskSpec::periodic("t", Duration::from_millis(10)))
            .unwrap();
        let v = simple_version().with_accel(AccelId::new(5));
        assert_eq!(
            b.version_decl(t, v).unwrap_err(),
            Error::UnknownAccel(AccelId::new(5))
        );
    }

    #[test]
    fn tick_and_hyperperiod() {
        let mut b = TaskSetBuilder::new();
        for (n, ms) in [("a", 10u64), ("b", 25), ("c", 4)] {
            let t = b
                .task_decl(TaskSpec::periodic(n, Duration::from_millis(ms)))
                .unwrap();
            b.version_decl(t, simple_version()).unwrap();
        }
        let s = b.build().unwrap();
        assert_eq!(s.scheduler_tick(), Some(Duration::from_millis(1)));
        assert_eq!(s.hyperperiod(), Some(Duration::from_millis(100)));
    }

    #[test]
    fn independent_tasks_have_no_edges() {
        let mut b = TaskSetBuilder::new();
        let t = b
            .task_decl(TaskSpec::periodic("solo", Duration::from_millis(5)))
            .unwrap();
        b.version_decl(t, simple_version()).unwrap();
        let s = b.build().unwrap();
        assert!(s.edges().is_empty());
        assert_eq!(s.component_root(t), t);
        assert_eq!(s.roots().count(), 1);
    }

    #[test]
    fn extended_appends_with_offset_remapping() {
        let base = diamond();
        let mut b = TaskSetBuilder::new();
        let root = b
            .task_decl(TaskSpec::periodic("t-root", Duration::from_millis(50)))
            .unwrap();
        let sink = b.task_decl(TaskSpec::graph_node("t-sink")).unwrap();
        let gpu = b.hwaccel_decl("t-gpu");
        b.version_decl(root, simple_version()).unwrap();
        b.version_decl(sink, simple_version().with_accel(gpu))
            .unwrap();
        let ch = b.channel_decl("t-ch", 1, 8);
        b.channel_connect(root, sink, ch).unwrap();
        let tenant = b.build().unwrap();

        let merged = base.extended(&tenant).unwrap();
        assert_eq!(merged.len(), 6);
        // Prefix untouched.
        for i in 0..4 {
            assert_eq!(
                merged.tasks()[i].spec().name(),
                base.tasks()[i].spec().name()
            );
            assert_eq!(merged.tasks()[i].id(), TaskId::new(i as u32));
        }
        // Tenant remapped: tasks 4..6, channel 4, accel 0 (base had none).
        assert_eq!(merged.tasks()[4].spec().name(), "t-root");
        assert_eq!(merged.tasks()[5].id(), TaskId::new(5));
        assert_eq!(merged.edges().len(), 5);
        let e = merged.edges()[4];
        assert_eq!(e.src, TaskId::new(4));
        assert_eq!(e.dst, TaskId::new(5));
        assert_eq!(e.channel, ChannelId::new(4));
        assert_eq!(merged.channels()[4].name(), "t-ch");
        // Accel binding rewritten to the merged id space.
        assert_eq!(
            merged.tasks()[5].versions()[0].accel(),
            Some(AccelId::new(0))
        );
        // Graph helpers still coherent.
        assert_eq!(merged.in_degree(TaskId::new(5)), 1);
        assert_eq!(merged.component_root(TaskId::new(5)), TaskId::new(4));
        assert_eq!(merged.topological_order().len(), 6);
        assert_eq!(
            merged.effective_period(TaskId::new(5)),
            Some(Duration::from_millis(50))
        );
    }

    #[test]
    fn utilization_accounts_inner_nodes() {
        let s = diamond();
        // 4 nodes, each 100us WCET, period 250ms -> 4 * 0.0004 = 0.0016.
        let u = s.total_utilization_max();
        assert!((u - 0.0016).abs() < 1e-9, "u = {u}");
    }
}
