//! Error types for the YASMIN middleware.

use crate::ids::{AccelId, ChannelId, TaskId, VersionId, WorkerId};
use std::fmt;

/// Errors produced while declaring, validating or running a task set.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A task id does not exist in the task set.
    UnknownTask(TaskId),
    /// A version id does not exist for the given task.
    UnknownVersion(TaskId, VersionId),
    /// An accelerator id was never declared.
    UnknownAccel(AccelId),
    /// A channel id was never declared.
    UnknownChannel(ChannelId),
    /// A worker id is outside the configured worker range.
    UnknownWorker(WorkerId),
    /// A recurring (periodic/sporadic) task was declared with a zero period.
    ZeroPeriod(TaskId),
    /// A task has no version to execute.
    NoVersions(TaskId),
    /// A constrained deadline exceeds the period.
    DeadlineExceedsPeriod(TaskId),
    /// The task graph contains a cycle (YASMIN requires a DAG, §2).
    GraphCycle {
        /// A task participating in the cycle.
        task: TaskId,
    },
    /// A channel was connected more than once.
    ChannelAlreadyConnected(ChannelId),
    /// A channel is used by a task but was never connected.
    ChannelNotConnected(ChannelId),
    /// A non-root task of a graph carries its own activation period.
    ///
    /// "Only the root nodes need to have a period attached" (§3.3); giving
    /// inner nodes a period is almost always a mis-declaration.
    InnerNodeWithPeriod(TaskId),
    /// Partitioned mapping requires every task to carry a target worker.
    MissingPartition(TaskId),
    /// The configuration is internally inconsistent.
    InvalidConfig(String),
    /// An operation requires the schedule to be stopped.
    ///
    /// "It is only possible to alter the task set while the schedule is not
    /// running" (§3.1).
    ScheduleRunning,
    /// An operation requires the schedule to be running.
    ScheduleNotRunning,
    /// A bounded capacity (queue, channel, table) would be exceeded.
    CapacityExceeded {
        /// What overflowed.
        what: &'static str,
        /// The configured bound.
        capacity: usize,
    },
    /// The offline scheduler could not build a feasible table.
    Infeasible(String),
    /// A tenant id does not exist in the running schedule.
    UnknownTenant(u32),
    /// An operation targeted a tenant that has already been retired.
    TenantRetired(u32),
    /// On-line admission refused a tenant (rendered reason; the structured
    /// violated bound lives in `yasmin_sched::admission`).
    AdmissionRejected(String),
    /// An OS interaction failed (affinity, locking memory, priorities…).
    Os(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownTask(t) => write!(f, "unknown task {t}"),
            Error::UnknownVersion(t, v) => write!(f, "unknown version {v} of task {t}"),
            Error::UnknownAccel(a) => write!(f, "unknown hardware accelerator {a}"),
            Error::UnknownChannel(c) => write!(f, "unknown channel {c}"),
            Error::UnknownWorker(w) => write!(f, "unknown worker {w}"),
            Error::ZeroPeriod(t) => write!(f, "recurring task {t} has a zero period"),
            Error::NoVersions(t) => write!(f, "task {t} has no declared version"),
            Error::DeadlineExceedsPeriod(t) => {
                write!(f, "constrained deadline of task {t} exceeds its period")
            }
            Error::GraphCycle { task } => {
                write!(f, "task graph is not acyclic (cycle through {task})")
            }
            Error::ChannelAlreadyConnected(c) => write!(f, "channel {c} connected twice"),
            Error::ChannelNotConnected(c) => write!(f, "channel {c} was never connected"),
            Error::InnerNodeWithPeriod(t) => {
                write!(f, "non-root graph task {t} must not declare its own period")
            }
            Error::MissingPartition(t) => {
                write!(f, "partitioned mapping but task {t} has no target worker")
            }
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::ScheduleRunning => write!(f, "operation requires a stopped schedule"),
            Error::ScheduleNotRunning => write!(f, "operation requires a running schedule"),
            Error::CapacityExceeded { what, capacity } => {
                write!(f, "capacity of {what} exceeded (bound {capacity})")
            }
            Error::Infeasible(msg) => write!(f, "no feasible offline schedule: {msg}"),
            Error::UnknownTenant(n) => write!(f, "unknown tenant N{n}"),
            Error::TenantRetired(n) => write!(f, "tenant N{n} has been retired"),
            Error::AdmissionRejected(msg) => write!(f, "admission rejected: {msg}"),
            Error::Os(msg) => write!(f, "os interaction failed: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience result alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = Error::UnknownTask(TaskId::new(3));
        assert_eq!(e.to_string(), "unknown task T3");
        let e = Error::CapacityExceeded {
            what: "ready queue",
            capacity: 8,
        };
        assert_eq!(e.to_string(), "capacity of ready queue exceeded (bound 8)");
    }

    #[test]
    fn error_is_std_error_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<Error>();
    }

    #[test]
    fn debug_is_never_empty() {
        assert!(!format!("{:?}", Error::ScheduleRunning).is_empty());
    }
}
