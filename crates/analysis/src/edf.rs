//! Processor-demand analysis for uniprocessor EDF.
//!
//! Baruah, Rosier & Howell's demand-bound criterion: a (constrained- or
//! implicit-deadline) sporadic set is EDF-schedulable on one core iff for
//! every absolute deadline `t` in the testing window,
//!
//! ```text
//! h(t) = Σᵢ max(0, ⌊(t − Dᵢ)/Tᵢ⌋ + 1) · Cᵢ ≤ t
//! ```
//!
//! The testing window is bounded by the hyperperiod (for `U ≤ 1`), which
//! our period grid keeps small.

use crate::util::{total_utilisation, wcet_of, WcetAssumption};
use yasmin_core::graph::TaskSet;
use yasmin_core::time::Duration;

/// The demand bound function `h(t)` of the whole set at time `t`.
#[must_use]
pub fn demand_bound(ts: &TaskSet, t: Duration, assumption: WcetAssumption) -> Duration {
    let mut h = Duration::ZERO;
    for task in ts.tasks() {
        let Some(period) = ts.effective_period(task.id()) else {
            continue;
        };
        if period.is_zero() {
            continue;
        }
        let d = ts.effective_deadline(task.id());
        if d == Duration::MAX || t < d {
            continue;
        }
        let jobs = (t - d) / period + 1;
        h += wcet_of(ts, task.id(), assumption) * jobs;
    }
    h
}

/// Exact uniprocessor EDF schedulability via processor demand.
///
/// Returns `false` immediately when `U > 1`; otherwise checks `h(t) ≤ t`
/// at every deadline up to the hyperperiod.
#[must_use]
pub fn edf_schedulable(ts: &TaskSet, assumption: WcetAssumption) -> bool {
    if total_utilisation(ts, assumption) > 1.0 + 1e-9 {
        return false;
    }
    let Some(hyper) = ts.hyperperiod() else {
        return true; // no recurring work
    };
    // Candidate check points: every absolute deadline d + k·T ≤ hyper.
    let mut points: Vec<Duration> = Vec::new();
    for task in ts.tasks() {
        let Some(period) = ts.effective_period(task.id()) else {
            continue;
        };
        if period.is_zero() {
            continue;
        }
        let d = ts.effective_deadline(task.id());
        if d == Duration::MAX {
            continue;
        }
        let mut t = d;
        while t <= hyper {
            points.push(t);
            t += period;
        }
    }
    points.sort_unstable();
    points.dedup();
    points
        .into_iter()
        .all(|t| demand_bound(ts, t, assumption) <= t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use yasmin_core::graph::TaskSetBuilder;
    use yasmin_core::task::TaskSpec;
    use yasmin_core::version::VersionSpec;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn set(params: &[(u64, u64, Option<u64>)]) -> TaskSet {
        let mut b = TaskSetBuilder::new();
        for (i, (t, c, d)) in params.iter().enumerate() {
            let mut spec = TaskSpec::periodic(format!("t{i}"), ms(*t));
            if let Some(d) = d {
                spec = spec.with_constrained_deadline(ms(*d));
            }
            let id = b.task_decl(spec).unwrap();
            b.version_decl(id, VersionSpec::new("v", ms(*c))).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn implicit_deadline_u_le_1_schedulable() {
        let ts = set(&[(10, 5, None), (20, 10, None)]);
        assert!(edf_schedulable(&ts, WcetAssumption::MaxVersion));
    }

    #[test]
    fn overload_rejected() {
        let ts = set(&[(10, 6, None), (20, 10, None)]);
        assert!(!edf_schedulable(&ts, WcetAssumption::MaxVersion));
    }

    #[test]
    fn constrained_deadline_demand() {
        // One task T=10, C=4, D=5: h(5)=4 <= 5 -> schedulable alone.
        let ts = set(&[(10, 4, Some(5))]);
        assert!(edf_schedulable(&ts, WcetAssumption::MaxVersion));
        assert_eq!(demand_bound(&ts, ms(5), WcetAssumption::MaxVersion), ms(4));
        assert_eq!(demand_bound(&ts, ms(4), WcetAssumption::MaxVersion), ms(0));
        assert_eq!(demand_bound(&ts, ms(15), WcetAssumption::MaxVersion), ms(8));
    }

    #[test]
    fn constrained_overload_caught_despite_u_le_1() {
        // Two tasks, U = 0.4+0.4 = 0.8 but both must finish within 4ms of
        // release: demand at t=4 is 8ms > 4ms.
        let ts = set(&[(10, 4, Some(4)), (10, 4, Some(4))]);
        assert!(!edf_schedulable(&ts, WcetAssumption::MaxVersion));
    }

    #[test]
    fn demand_is_monotone() {
        let ts = set(&[(10, 3, None), (25, 5, Some(20))]);
        let mut prev = Duration::ZERO;
        for t_ms in (0..=100).step_by(5) {
            let h = demand_bound(&ts, ms(t_ms), WcetAssumption::MaxVersion);
            assert!(h >= prev);
            prev = h;
        }
    }
}
