//! # yasmin-analysis
//!
//! Schedulability analysis companions to the YASMIN middleware:
//!
//! * [`util`] — utilisation tests: Liu & Layland (RM), `U ≤ 1` (EDF),
//!   Goossens-Funk-Baruah (global EDF);
//! * [`rta`] — fixed-priority response-time analysis (uniprocessor and
//!   partitioned);
//! * [`edf`] — exact uniprocessor EDF via processor-demand analysis;
//! * [`dag`] — Graham makespan bounds for DAG task graphs;
//! * [`blocking`] — PIP blocking terms from accelerator sections, folded
//!   into a blocking-aware RTA (§3.2 meets Rajkumar's bound).
//!
//! These are used by the experiment harness (to pick interesting
//! utilisation levels) and cross-validated against the simulator in the
//! integration tests: whenever an analysis deems a set schedulable, the
//! simulator must observe zero deadline misses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocking;
pub mod dag;
pub mod edf;
pub mod rta;
pub mod util;

pub use blocking::{blocking_term, response_times_blocking};
pub use dag::{critical_path, dag_meets_deadline, graham_bound, volume};
pub use edf::{demand_bound, edf_schedulable};
pub use rta::{response_times, schedulable, ResponseTime};
pub use util::{
    edf_utilisation_test, gfb_global_edf_test, liu_layland_bound, max_utilisation,
    rm_utilisation_test, total_utilisation, WcetAssumption,
};
