//! Blocking-aware response-time analysis.
//!
//! YASMIN serialises hardware accelerators and applies the Priority
//! Inheritance Protocol on contention (§3.2). Under PIP, a task can be
//! blocked at most once per accelerator it may need, by the longest
//! lower-priority *accelerator section* on that resource (Rajkumar's
//! classic bound). Since a version holds its accelerator for its whole
//! WCET (the paper's stated limitation), the section length is simply
//! the version's WCET.
//!
//! [`blocking_term`] computes `B_i` per task; [`response_times_blocking`]
//! folds it into the standard RTA iteration:
//!
//! ```text
//! Rᵏ⁺¹ = Cᵢ + Bᵢ + Σ_{j ∈ hp(i)} ⌈Rᵏ / Tⱼ⌉ · Cⱼ
//! ```

use crate::rta::ResponseTime;
use crate::util::{wcet_of, WcetAssumption};
use yasmin_core::graph::TaskSet;
use yasmin_core::ids::{AccelId, TaskId};
use yasmin_core::priority::{Priority, PriorityPolicy};
use yasmin_core::time::Duration;

fn static_priority(ts: &TaskSet, policy: PriorityPolicy, t: TaskId) -> Priority {
    match policy {
        PriorityPolicy::RateMonotonic => ts
            .effective_period(t)
            .map_or(Priority::LOWEST, Priority::rate_monotonic),
        PriorityPolicy::DeadlineMonotonic => {
            let d = ts.effective_deadline(t);
            if d == Duration::MAX {
                Priority::LOWEST
            } else {
                Priority::deadline_monotonic(d)
            }
        }
        PriorityPolicy::UserDefined => ts.tasks()[t.index()]
            .spec()
            .static_priority()
            .unwrap_or(Priority::LOWEST),
        PriorityPolicy::EarliestDeadlineFirst => Priority::LOWEST,
    }
}

/// Accelerators any version of `t` may occupy.
fn accels_of(ts: &TaskSet, t: TaskId) -> Vec<AccelId> {
    let mut out = Vec::new();
    for v in ts.tasks()[t.index()].versions() {
        if let Some(a) = v.accel() {
            if !out.contains(&a) {
                out.push(a);
            }
        }
    }
    out
}

/// The PIP blocking bound `B_i` of `task`: the longest accelerator
/// section of any *lower-priority* task on any accelerator that `task`
/// (or a higher-priority task) may request. Zero when the task set uses
/// no accelerators.
#[must_use]
pub fn blocking_term(
    ts: &TaskSet,
    policy: PriorityPolicy,
    task: TaskId,
    assumption: WcetAssumption,
) -> Duration {
    let my_prio = static_priority(ts, policy, task);
    // Resources that `task` or any higher-priority task may lock.
    let mut relevant: Vec<AccelId> = Vec::new();
    for t in ts.tasks() {
        let p = static_priority(ts, policy, t.id());
        if t.id() == task || p.is_higher_than(my_prio) {
            for a in accels_of(ts, t.id()) {
                if !relevant.contains(&a) {
                    relevant.push(a);
                }
            }
        }
    }
    if relevant.is_empty() {
        return Duration::ZERO;
    }
    // Longest section of a lower-priority task on any relevant resource.
    let mut worst = Duration::ZERO;
    for t in ts.tasks() {
        if t.id() == task {
            continue;
        }
        let p = static_priority(ts, policy, t.id());
        let lower = !p.is_higher_than(my_prio) && p != my_prio;
        if !lower {
            continue;
        }
        for v in t.versions() {
            if let Some(a) = v.accel() {
                if relevant.contains(&a) {
                    // Section length = whole version WCET (§3.2
                    // limitation). Use the analysis assumption for
                    // consistency.
                    let _ = assumption;
                    worst = worst.max(v.wcet());
                }
            }
        }
    }
    worst
}

/// RTA with the PIP blocking term folded in (uniprocessor / one
/// partition).
///
/// # Panics
///
/// Panics for EDF (use the demand-bound analysis instead).
#[must_use]
pub fn response_times_blocking(
    ts: &TaskSet,
    policy: PriorityPolicy,
    assumption: WcetAssumption,
) -> Vec<ResponseTime> {
    assert!(policy.is_static(), "blocking RTA needs static priorities");
    let tasks: Vec<TaskId> = ts.tasks().iter().map(|t| t.id()).collect();
    tasks
        .iter()
        .map(|&t| {
            let c = wcet_of(ts, t, assumption);
            let b = blocking_term(ts, policy, t, assumption);
            let d = ts.effective_deadline(t);
            let my_prio = static_priority(ts, policy, t);
            let hp: Vec<(Duration, Duration)> = tasks
                .iter()
                .filter(|&&j| j != t)
                .filter(|&&j| {
                    let pj = static_priority(ts, policy, j);
                    pj.is_higher_than(my_prio) || (pj == my_prio && j < t)
                })
                .filter_map(|&j| {
                    let tj = ts.effective_period(j)?;
                    if tj.is_zero() {
                        return None;
                    }
                    Some((wcet_of(ts, j, assumption), tj))
                })
                .collect();
            let limit = if d == Duration::MAX {
                ts.hyperperiod().unwrap_or(Duration::MAX)
            } else {
                d
            };
            let mut r = c + b;
            let wcrt = loop {
                let mut next = c + b;
                for (cj, tj) in &hp {
                    next += *cj * r.as_nanos().div_ceil(tj.as_nanos());
                }
                if next == r {
                    break Some(r);
                }
                if next > limit {
                    break None;
                }
                r = next;
            };
            ResponseTime {
                task: t,
                wcrt,
                deadline: d,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use yasmin_core::graph::TaskSetBuilder;
    use yasmin_core::task::TaskSpec;
    use yasmin_core::version::VersionSpec;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    /// hi (T=10, C=2, uses GPU) and lo (T=50, C=8, uses GPU).
    fn gpu_pair() -> TaskSet {
        let mut b = TaskSetBuilder::new();
        let gpu = b.hwaccel_decl("gpu");
        let hi = b.task_decl(TaskSpec::periodic("hi", ms(10))).unwrap();
        let v = b.version_decl(hi, VersionSpec::new("h", ms(2))).unwrap();
        b.hwaccel_use(hi, v, gpu).unwrap();
        let lo = b.task_decl(TaskSpec::periodic("lo", ms(50))).unwrap();
        let v = b.version_decl(lo, VersionSpec::new("l", ms(8))).unwrap();
        b.hwaccel_use(lo, v, gpu).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn high_priority_task_inherits_low_section() {
        let ts = gpu_pair();
        // Under RM, hi is more urgent; lo's 8ms GPU section blocks it.
        let b = blocking_term(
            &ts,
            PriorityPolicy::RateMonotonic,
            TaskId::new(0),
            WcetAssumption::MaxVersion,
        );
        assert_eq!(b, ms(8));
        // The lowest-priority task is never blocked by PIP.
        let b = blocking_term(
            &ts,
            PriorityPolicy::RateMonotonic,
            TaskId::new(1),
            WcetAssumption::MaxVersion,
        );
        assert_eq!(b, Duration::ZERO);
    }

    #[test]
    fn no_accels_means_no_blocking() {
        let mut b = TaskSetBuilder::new();
        let t = b.task_decl(TaskSpec::periodic("t", ms(10))).unwrap();
        b.version_decl(t, VersionSpec::new("v", ms(1))).unwrap();
        let ts = b.build().unwrap();
        assert_eq!(
            blocking_term(
                &ts,
                PriorityPolicy::RateMonotonic,
                t,
                WcetAssumption::MaxVersion
            ),
            Duration::ZERO
        );
    }

    #[test]
    fn blocking_extends_response_time() {
        let ts = gpu_pair();
        let plain = crate::rta::response_times(
            &ts,
            PriorityPolicy::RateMonotonic,
            WcetAssumption::MaxVersion,
        );
        let blocked = response_times_blocking(
            &ts,
            PriorityPolicy::RateMonotonic,
            WcetAssumption::MaxVersion,
        );
        // hi: plain RTA gives 2ms; with blocking it is 2 + 8 = 10ms,
        // right at the deadline.
        assert_eq!(plain[0].wcrt, Some(ms(2)));
        assert_eq!(blocked[0].wcrt, Some(ms(10)));
        assert!(blocked[0].schedulable());
    }

    #[test]
    fn unrelated_accels_do_not_block() {
        // lo uses a different accelerator that neither hi nor anything
        // above it requests: no blocking.
        let mut b = TaskSetBuilder::new();
        let gpu = b.hwaccel_decl("gpu");
        let dsp = b.hwaccel_decl("dsp");
        let hi = b.task_decl(TaskSpec::periodic("hi", ms(10))).unwrap();
        let v = b.version_decl(hi, VersionSpec::new("h", ms(2))).unwrap();
        b.hwaccel_use(hi, v, gpu).unwrap();
        let lo = b.task_decl(TaskSpec::periodic("lo", ms(50))).unwrap();
        let v = b.version_decl(lo, VersionSpec::new("l", ms(8))).unwrap();
        b.hwaccel_use(lo, v, dsp).unwrap();
        let ts = b.build().unwrap();
        assert_eq!(
            blocking_term(
                &ts,
                PriorityPolicy::RateMonotonic,
                hi,
                WcetAssumption::MaxVersion
            ),
            Duration::ZERO
        );
    }
}
