//! Makespan bounds for DAG task graphs.
//!
//! Graham's classic list-scheduling bound: on `m` identical cores any
//! work-conserving schedule finishes a DAG within
//!
//! ```text
//! makespan ≤ len(G) + (vol(G) − len(G)) / m
//! ```
//!
//! where `len` is the critical-path length and `vol` the total work.
//! YASMIN's graph-level deadlines (§2) can be checked against this bound
//! before deployment.

use crate::util::{wcet_of, WcetAssumption};
use yasmin_core::graph::TaskSet;
use yasmin_core::ids::TaskId;
use yasmin_core::time::Duration;

/// Total work of the component rooted at `root`.
#[must_use]
pub fn volume(ts: &TaskSet, root: TaskId, assumption: WcetAssumption) -> Duration {
    ts.component_of(root)
        .into_iter()
        .fold(Duration::ZERO, |acc, t| acc + wcet_of(ts, t, assumption))
}

/// Critical-path length of the component rooted at `root`.
#[must_use]
pub fn critical_path(ts: &TaskSet, root: TaskId, assumption: WcetAssumption) -> Duration {
    let members = ts.component_of(root);
    let mut finish: std::collections::HashMap<TaskId, Duration> = std::collections::HashMap::new();
    let mut longest = Duration::ZERO;
    for &t in &members {
        let start = ts
            .in_edges(t)
            .filter_map(|e| finish.get(&e.src).copied())
            .max()
            .unwrap_or(Duration::ZERO);
        let f = start + wcet_of(ts, t, assumption);
        longest = longest.max(f);
        finish.insert(t, f);
    }
    longest
}

/// Graham's bound on the makespan of the component rooted at `root` on
/// `m` cores.
///
/// # Panics
///
/// Panics if `m == 0`.
#[must_use]
pub fn graham_bound(ts: &TaskSet, root: TaskId, m: usize, assumption: WcetAssumption) -> Duration {
    assert!(m > 0, "need at least one core");
    let len = critical_path(ts, root, assumption);
    let vol = volume(ts, root, assumption);
    len + (vol - len) / m as u64
}

/// `true` if Graham's bound proves the graph meets its (graph-level)
/// deadline on `m` dedicated cores.
#[must_use]
pub fn dag_meets_deadline(
    ts: &TaskSet,
    root: TaskId,
    m: usize,
    assumption: WcetAssumption,
) -> bool {
    let d = ts.effective_deadline(root);
    if d == Duration::MAX {
        return true;
    }
    graham_bound(ts, root, m, assumption) <= d
}

#[cfg(test)]
mod tests {
    use super::*;
    use yasmin_core::graph::TaskSetBuilder;
    use yasmin_core::task::TaskSpec;
    use yasmin_core::version::VersionSpec;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    /// fork(10) -> {a(30), b(20)} -> join(10)
    fn diamond() -> (TaskSet, TaskId) {
        let mut b = TaskSetBuilder::new();
        let fork = b.task_decl(TaskSpec::periodic("fork", ms(100))).unwrap();
        let a = b.task_decl(TaskSpec::graph_node("a")).unwrap();
        let c = b.task_decl(TaskSpec::graph_node("b")).unwrap();
        let join = b.task_decl(TaskSpec::graph_node("join")).unwrap();
        for (t, w) in [(fork, 10), (a, 30), (c, 20), (join, 10)] {
            b.version_decl(t, VersionSpec::new("v", ms(w))).unwrap();
        }
        for (s, d, n) in [
            (fork, a, "x"),
            (fork, c, "y"),
            (a, join, "z"),
            (c, join, "w"),
        ] {
            let ch = b.channel_decl(n, 1, 1);
            b.channel_connect(s, d, ch).unwrap();
        }
        (b.build().unwrap(), fork)
    }

    #[test]
    fn volume_and_critical_path() {
        let (ts, root) = diamond();
        assert_eq!(volume(&ts, root, WcetAssumption::MaxVersion), ms(70));
        // Critical path: fork -> a -> join = 50.
        assert_eq!(critical_path(&ts, root, WcetAssumption::MaxVersion), ms(50));
    }

    #[test]
    fn graham_bounds() {
        let (ts, root) = diamond();
        // m=1: 50 + 20 = 70 (serialisation).
        assert_eq!(
            graham_bound(&ts, root, 1, WcetAssumption::MaxVersion),
            ms(70)
        );
        // m=2: 50 + 10 = 60.
        assert_eq!(
            graham_bound(&ts, root, 2, WcetAssumption::MaxVersion),
            ms(60)
        );
        // m large: approaches the critical path (50 + 20/100 = 50.2ms).
        assert_eq!(
            graham_bound(&ts, root, 100, WcetAssumption::MaxVersion),
            Duration::from_micros(50_200)
        );
    }

    #[test]
    fn deadline_check() {
        let (ts, root) = diamond();
        // Deadline = period = 100ms; bound 70 on one core -> fits.
        assert!(dag_meets_deadline(&ts, root, 1, WcetAssumption::MaxVersion));
    }

    #[test]
    fn single_node_graph() {
        let mut b = TaskSetBuilder::new();
        let t = b.task_decl(TaskSpec::periodic("solo", ms(10))).unwrap();
        b.version_decl(t, VersionSpec::new("v", ms(4))).unwrap();
        let ts = b.build().unwrap();
        assert_eq!(critical_path(&ts, t, WcetAssumption::MaxVersion), ms(4));
        assert_eq!(graham_bound(&ts, t, 4, WcetAssumption::MaxVersion), ms(4));
    }
}
