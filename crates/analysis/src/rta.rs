//! Response-time analysis (RTA) for fixed-priority scheduling.
//!
//! The classic Joseph & Pandya / Audsley iteration for preemptive
//! fixed-priority uniprocessor (or per-core partitioned) scheduling with
//! constrained deadlines:
//!
//! ```text
//! R⁰ = Cᵢ;   Rᵏ⁺¹ = Cᵢ + Σ_{j ∈ hp(i)} ⌈Rᵏ / Tⱼ⌉ · Cⱼ
//! ```
//!
//! YASMIN's offline synthesis and the experiment harness use this to
//! decide whether a partitioned assignment is feasible before running it.

use crate::util::{wcet_of, WcetAssumption};
use yasmin_core::graph::TaskSet;
use yasmin_core::ids::TaskId;
use yasmin_core::priority::{Priority, PriorityPolicy};
use yasmin_core::time::Duration;

/// Result of the RTA for one task.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResponseTime {
    /// The task.
    pub task: TaskId,
    /// The computed worst-case response time, `None` if the iteration
    /// diverged past the deadline (unschedulable).
    pub wcrt: Option<Duration>,
    /// The deadline the WCRT is compared against.
    pub deadline: Duration,
}

impl ResponseTime {
    /// `true` if the task provably meets its deadline.
    #[must_use]
    pub fn schedulable(&self) -> bool {
        self.wcrt.is_some_and(|r| r <= self.deadline)
    }
}

fn static_priority(ts: &TaskSet, policy: PriorityPolicy, t: TaskId) -> Priority {
    match policy {
        PriorityPolicy::RateMonotonic => ts
            .effective_period(t)
            .map_or(Priority::LOWEST, Priority::rate_monotonic),
        PriorityPolicy::DeadlineMonotonic => {
            let d = ts.effective_deadline(t);
            if d == Duration::MAX {
                Priority::LOWEST
            } else {
                Priority::deadline_monotonic(d)
            }
        }
        PriorityPolicy::UserDefined => ts.tasks()[t.index()]
            .spec()
            .static_priority()
            .unwrap_or(Priority::LOWEST),
        PriorityPolicy::EarliestDeadlineFirst => Priority::LOWEST,
    }
}

/// Runs the RTA for every task of `ts` on a single core under a static
/// priority `policy` (RM, DM or user-defined).
///
/// Graph inner nodes are treated as independent tasks with their
/// effective (graph-inherited) period and deadline — a safe abstraction
/// when the whole graph runs on the analysed core.
///
/// # Panics
///
/// Panics if called with [`PriorityPolicy::EarliestDeadlineFirst`]; use
/// [`crate::edf`] for EDF.
#[must_use]
pub fn response_times(
    ts: &TaskSet,
    policy: PriorityPolicy,
    assumption: WcetAssumption,
) -> Vec<ResponseTime> {
    assert!(
        policy.is_static(),
        "RTA applies to static priorities; use the EDF demand test instead"
    );
    let tasks: Vec<TaskId> = ts.tasks().iter().map(|t| t.id()).collect();
    tasks
        .iter()
        .map(|&t| {
            let c = wcet_of(ts, t, assumption);
            let d = ts.effective_deadline(t);
            let my_prio = static_priority(ts, policy, t);
            // Higher-priority set: strictly more urgent; equal priority
            // broken by task id (matching the ready-queue tie-break).
            let hp: Vec<(Duration, Duration)> = tasks
                .iter()
                .filter(|&&j| j != t)
                .filter(|&&j| {
                    let pj = static_priority(ts, policy, j);
                    pj.is_higher_than(my_prio) || (pj == my_prio && j < t)
                })
                .filter_map(|&j| {
                    let tj = ts.effective_period(j)?;
                    if tj.is_zero() {
                        return None;
                    }
                    Some((wcet_of(ts, j, assumption), tj))
                })
                .collect();

            let limit = if d == Duration::MAX {
                // Unbounded deadline: iterate up to the hyperperiod as a
                // pragmatic divergence cut-off.
                ts.hyperperiod().unwrap_or(Duration::MAX)
            } else {
                d
            };
            let mut r = c;
            let wcrt = loop {
                let mut next = c;
                for (cj, tj) in &hp {
                    let jobs = (r.as_nanos()).div_ceil(tj.as_nanos());
                    next += *cj * jobs;
                }
                if next == r {
                    break Some(r);
                }
                if next > limit {
                    break None;
                }
                r = next;
            };
            ResponseTime {
                task: t,
                wcrt,
                deadline: d,
            }
        })
        .collect()
}

/// `true` if every task passes the RTA.
#[must_use]
pub fn schedulable(ts: &TaskSet, policy: PriorityPolicy, assumption: WcetAssumption) -> bool {
    response_times(ts, policy, assumption)
        .iter()
        .all(ResponseTime::schedulable)
}

/// Per-worker RTA for a partitioned task set: each worker's tasks are
/// analysed in isolation. Returns `(worker, ResponseTime)` pairs.
#[must_use]
pub fn partitioned_response_times(
    ts: &TaskSet,
    workers: usize,
    policy: PriorityPolicy,
    assumption: WcetAssumption,
) -> Vec<(usize, ResponseTime)> {
    let mut out = Vec::new();
    let all = response_times_filtered(ts, policy, assumption, workers);
    out.extend(all);
    out
}

fn response_times_filtered(
    ts: &TaskSet,
    policy: PriorityPolicy,
    assumption: WcetAssumption,
    workers: usize,
) -> Vec<(usize, ResponseTime)> {
    let mut results = Vec::new();
    for w in 0..workers {
        let members: Vec<TaskId> = ts
            .tasks()
            .iter()
            .filter(|t| t.spec().assigned_worker().is_some_and(|a| a.index() == w))
            .map(|t| t.id())
            .collect();
        for &t in &members {
            let c = wcet_of(ts, t, assumption);
            let d = ts.effective_deadline(t);
            let my_prio = static_priority(ts, policy, t);
            let hp: Vec<(Duration, Duration)> = members
                .iter()
                .filter(|&&j| j != t)
                .filter(|&&j| {
                    let pj = static_priority(ts, policy, j);
                    pj.is_higher_than(my_prio) || (pj == my_prio && j < t)
                })
                .filter_map(|&j| {
                    let tj = ts.effective_period(j)?;
                    if tj.is_zero() {
                        return None;
                    }
                    Some((wcet_of(ts, j, assumption), tj))
                })
                .collect();
            let limit = if d == Duration::MAX {
                ts.hyperperiod().unwrap_or(Duration::MAX)
            } else {
                d
            };
            let mut r = c;
            let wcrt = loop {
                let mut next = c;
                for (cj, tj) in &hp {
                    next += *cj * r.as_nanos().div_ceil(tj.as_nanos());
                }
                if next == r {
                    break Some(r);
                }
                if next > limit {
                    break None;
                }
                r = next;
            };
            results.push((
                w,
                ResponseTime {
                    task: t,
                    wcrt,
                    deadline: d,
                },
            ));
        }
    }
    results
}

/// A simple sanity bound used in tests: the busy-period-free lower bound
/// `R ≥ C` and, when schedulable, `R ≤ D`.
#[must_use]
pub fn wcrt_bounds_hold(r: &ResponseTime, c: Duration) -> bool {
    match r.wcrt {
        Some(w) => w >= c && (w <= r.deadline),
        None => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yasmin_core::graph::TaskSetBuilder;
    use yasmin_core::task::TaskSpec;
    use yasmin_core::version::VersionSpec;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn set(params: &[(u64, u64)]) -> TaskSet {
        let mut b = TaskSetBuilder::new();
        for (i, (t, c)) in params.iter().enumerate() {
            let id = b
                .task_decl(TaskSpec::periodic(format!("t{i}"), ms(*t)))
                .unwrap();
            b.version_decl(id, VersionSpec::new("v", ms(*c))).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn textbook_example() {
        // T = {(T=7,C=3), (T=12,C=3), (T=20,C=5)}, RM.
        // R1 = 3; R2 = 3 + ceil(R2/7)*3 -> 6; R3: 5+3+3=11 ->
        // 5 + ceil(11/7)*3 + ceil(11/12)*3 = 5+6+3 = 14 ->
        // 5 + ceil(14/7)*3 + ceil(14/12)*3 = 5+6+6 = 17 ->
        // 5 + 9 + 6 = 20 -> 5 + 9 + 6 = 20 fixpoint.
        let ts = set(&[(7, 3), (12, 3), (20, 5)]);
        let r = response_times(
            &ts,
            PriorityPolicy::RateMonotonic,
            WcetAssumption::MaxVersion,
        );
        assert_eq!(r[0].wcrt, Some(ms(3)));
        assert_eq!(r[1].wcrt, Some(ms(6)));
        assert_eq!(r[2].wcrt, Some(ms(20)));
        assert!(r.iter().all(ResponseTime::schedulable));
    }

    #[test]
    fn unschedulable_diverges() {
        let ts = set(&[(10, 6), (15, 6)]);
        let r = response_times(
            &ts,
            PriorityPolicy::RateMonotonic,
            WcetAssumption::MaxVersion,
        );
        assert!(r[0].schedulable());
        assert!(!r[1].schedulable());
        assert_eq!(r[1].wcrt, None);
        assert!(!schedulable(
            &ts,
            PriorityPolicy::RateMonotonic,
            WcetAssumption::MaxVersion
        ));
    }

    #[test]
    fn dm_uses_deadlines() {
        // Same periods; t1 has the tighter deadline, so under DM it
        // preempts t0 even though periods tie.
        let mut b = TaskSetBuilder::new();
        let t0 = b.task_decl(TaskSpec::periodic("t0", ms(20))).unwrap();
        b.version_decl(t0, VersionSpec::new("v", ms(5))).unwrap();
        let t1 = b
            .task_decl(TaskSpec::periodic("t1", ms(20)).with_constrained_deadline(ms(8)))
            .unwrap();
        b.version_decl(t1, VersionSpec::new("v", ms(3))).unwrap();
        let ts = b.build().unwrap();
        let r = response_times(
            &ts,
            PriorityPolicy::DeadlineMonotonic,
            WcetAssumption::MaxVersion,
        );
        assert_eq!(r[1].wcrt, Some(ms(3)), "tight-deadline task runs first");
        assert_eq!(r[0].wcrt, Some(ms(8)));
    }

    #[test]
    #[should_panic(expected = "static")]
    fn edf_rejected() {
        let ts = set(&[(10, 1)]);
        let _ = response_times(
            &ts,
            PriorityPolicy::EarliestDeadlineFirst,
            WcetAssumption::MaxVersion,
        );
    }

    #[test]
    fn partitioned_isolates_workers() {
        let mut b = TaskSetBuilder::new();
        // Worker 0: two heavy tasks; worker 1: one light task.
        for (i, (t, c, w)) in [(10u64, 6u64, 0u16), (15, 6, 0), (10, 1, 1)]
            .iter()
            .enumerate()
        {
            let id = b
                .task_decl(
                    TaskSpec::periodic(format!("t{i}"), ms(*t))
                        .on_worker(yasmin_core::ids::WorkerId::new(*w)),
                )
                .unwrap();
            b.version_decl(id, VersionSpec::new("v", ms(*c))).unwrap();
        }
        let ts = b.build().unwrap();
        let r = partitioned_response_times(
            &ts,
            2,
            PriorityPolicy::RateMonotonic,
            WcetAssumption::MaxVersion,
        );
        // Worker 0 overloaded; worker 1 fine.
        let w0_sched = r
            .iter()
            .filter(|(w, _)| *w == 0)
            .all(|(_, rt)| rt.schedulable());
        let w1_sched = r
            .iter()
            .filter(|(w, _)| *w == 1)
            .all(|(_, rt)| rt.schedulable());
        assert!(!w0_sched);
        assert!(w1_sched);
    }
}
