//! Utilisation-based schedulability tests.

use yasmin_core::graph::TaskSet;
use yasmin_core::ids::TaskId;
use yasmin_core::time::Duration;

/// Which version's WCET an analysis assumes per task.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum WcetAssumption {
    /// The largest WCET over all versions (safe for any runtime choice).
    #[default]
    MaxVersion,
    /// The smallest WCET (valid only when the runtime provably picks it,
    /// e.g. off-line pre-selection).
    MinVersion,
}

/// The WCET of `task` under `assumption`.
#[must_use]
pub fn wcet_of(ts: &TaskSet, task: TaskId, assumption: WcetAssumption) -> Duration {
    let t = &ts.tasks()[task.index()];
    match assumption {
        WcetAssumption::MaxVersion => t.max_wcet(),
        WcetAssumption::MinVersion => t.min_wcet(),
    }
}

/// Per-task utilisation `C/T` (effective period for graph nodes); zero
/// for tasks with no period (pure aperiodic).
#[must_use]
pub fn utilisation_of(ts: &TaskSet, task: TaskId, assumption: WcetAssumption) -> f64 {
    match ts.effective_period(task) {
        Some(p) if !p.is_zero() => {
            wcet_of(ts, task, assumption).as_nanos() as f64 / p.as_nanos() as f64
        }
        _ => 0.0,
    }
}

/// Total utilisation of the set.
#[must_use]
pub fn total_utilisation(ts: &TaskSet, assumption: WcetAssumption) -> f64 {
    ts.tasks()
        .iter()
        .map(|t| utilisation_of(ts, t.id(), assumption))
        .sum()
}

/// Largest single-task utilisation.
#[must_use]
pub fn max_utilisation(ts: &TaskSet, assumption: WcetAssumption) -> f64 {
    ts.tasks()
        .iter()
        .map(|t| utilisation_of(ts, t.id(), assumption))
        .fold(0.0, f64::max)
}

/// The Liu & Layland bound for rate-monotonic scheduling of `n` implicit-
/// deadline tasks on one core: `n(2^{1/n} − 1)`.
#[must_use]
pub fn liu_layland_bound(n: usize) -> f64 {
    if n == 0 {
        return 1.0;
    }
    n as f64 * (2f64.powf(1.0 / n as f64) - 1.0)
}

/// Sufficient RM test on one core: `U ≤ n(2^{1/n} − 1)`.
#[must_use]
pub fn rm_utilisation_test(ts: &TaskSet, assumption: WcetAssumption) -> bool {
    total_utilisation(ts, assumption) <= liu_layland_bound(ts.len()) + 1e-12
}

/// Exact EDF test on one core for implicit deadlines: `U ≤ 1`.
#[must_use]
pub fn edf_utilisation_test(ts: &TaskSet, assumption: WcetAssumption) -> bool {
    total_utilisation(ts, assumption) <= 1.0 + 1e-12
}

/// The Goossens-Funk-Baruah (GFB) sufficient test for global EDF on `m`
/// identical cores with implicit deadlines:
/// `U ≤ m − (m − 1)·u_max`.
#[must_use]
pub fn gfb_global_edf_test(ts: &TaskSet, m: usize, assumption: WcetAssumption) -> bool {
    let u = total_utilisation(ts, assumption);
    let umax = max_utilisation(ts, assumption);
    u <= m as f64 - (m as f64 - 1.0) * umax + 1e-12
}

#[cfg(test)]
mod tests {
    use super::*;
    use yasmin_core::graph::TaskSetBuilder;
    use yasmin_core::task::TaskSpec;
    use yasmin_core::version::VersionSpec;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn set(params: &[(u64, u64)]) -> TaskSet {
        let mut b = TaskSetBuilder::new();
        for (i, (t, c)) in params.iter().enumerate() {
            let id = b
                .task_decl(TaskSpec::periodic(format!("t{i}"), ms(*t)))
                .unwrap();
            b.version_decl(id, VersionSpec::new("v", ms(*c))).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn utilisation_sums() {
        let ts = set(&[(10, 2), (20, 5), (40, 10)]);
        let u = total_utilisation(&ts, WcetAssumption::MaxVersion);
        assert!((u - 0.7).abs() < 1e-9);
        assert!((max_utilisation(&ts, WcetAssumption::MaxVersion) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn min_vs_max_version() {
        let mut b = TaskSetBuilder::new();
        let t = b.task_decl(TaskSpec::periodic("t", ms(100))).unwrap();
        b.version_decl(t, VersionSpec::new("slow", ms(50))).unwrap();
        b.version_decl(t, VersionSpec::new("fast", ms(10))).unwrap();
        let ts = b.build().unwrap();
        assert!((utilisation_of(&ts, t, WcetAssumption::MaxVersion) - 0.5).abs() < 1e-9);
        assert!((utilisation_of(&ts, t, WcetAssumption::MinVersion) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn liu_layland_classics() {
        assert!((liu_layland_bound(1) - 1.0).abs() < 1e-12);
        assert!((liu_layland_bound(2) - 0.8284).abs() < 1e-3);
        // n -> inf: ln 2.
        assert!((liu_layland_bound(10_000) - std::f64::consts::LN_2).abs() < 1e-4);
    }

    #[test]
    fn rm_test_example() {
        // U = 0.7 < LL(3) = 0.7798 -> schedulable.
        assert!(rm_utilisation_test(
            &set(&[(10, 2), (20, 5), (40, 10)]),
            WcetAssumption::MaxVersion
        ));
        // U = 0.9 > LL(3).
        assert!(!rm_utilisation_test(
            &set(&[(10, 3), (20, 6), (40, 12)]),
            WcetAssumption::MaxVersion
        ));
    }

    #[test]
    fn edf_test_boundary() {
        assert!(edf_utilisation_test(
            &set(&[(10, 5), (20, 10)]),
            WcetAssumption::MaxVersion
        ));
        assert!(!edf_utilisation_test(
            &set(&[(10, 5), (20, 11)]),
            WcetAssumption::MaxVersion
        ));
    }

    #[test]
    fn gfb_test() {
        // 4 tasks of U=0.5 on 2 cores: U=2.0, umax=0.5;
        // bound = 2 - 1*0.5 = 1.5 -> fails.
        let heavy = set(&[(10, 5), (10, 5), (10, 5), (10, 5)]);
        assert!(!gfb_global_edf_test(&heavy, 2, WcetAssumption::MaxVersion));
        // 4 tasks of U=0.3 on 2 cores: U=1.2 <= 2 - 0.3 = 1.7 -> passes.
        let light = set(&[(10, 3), (10, 3), (10, 3), (10, 3)]);
        assert!(gfb_global_edf_test(&light, 2, WcetAssumption::MaxVersion));
    }
}
