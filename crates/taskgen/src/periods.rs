//! Period, WCET and deadline generation.
//!
//! Utilisation vectors (from [`mod@crate::drs`] / [`mod@crate::uunifast`]) become
//! concrete task parameters here: periods drawn log-uniformly or from a
//! harmonic-friendly grid, WCETs as `C = U·T`, and optional constrained
//! deadlines.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use yasmin_core::time::Duration;

/// How periods are drawn.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PeriodModel {
    /// Log-uniform in `[min_ms, max_ms]` milliseconds (common in
    /// schedulability studies; keeps small and large periods equally
    /// represented).
    LogUniform {
        /// Smallest period in milliseconds.
        min_ms: u64,
        /// Largest period in milliseconds.
        max_ms: u64,
    },
    /// Uniform choice from a fixed grid (keeps hyperperiods small, which
    /// bounds off-line table sizes).
    Grid(&'static [u64]),
}

/// A practical default grid of periods in milliseconds: divisors-friendly
/// values giving a 1-second hyperperiod.
pub const GRID_1S: &[u64] = &[10, 20, 25, 40, 50, 100, 125, 200, 250, 500, 1000];

/// Draws `n` periods under `model`.
///
/// # Panics
///
/// Panics on empty grids or inverted bounds.
#[must_use]
pub fn periods(n: usize, model: PeriodModel, seed: u64) -> Vec<Duration> {
    let mut rng = StdRng::seed_from_u64(seed);
    periods_with(&mut rng, n, model)
}

/// [`periods`] drawing from a caller-provided generator.
#[must_use]
pub fn periods_with(rng: &mut StdRng, n: usize, model: PeriodModel) -> Vec<Duration> {
    match model {
        PeriodModel::LogUniform { min_ms, max_ms } => {
            assert!(min_ms > 0 && min_ms <= max_ms, "need 0 < min <= max");
            (0..n)
                .map(|_| {
                    let lo = (min_ms as f64).ln();
                    let hi = (max_ms as f64).ln();
                    let v: f64 = rng.random_range(lo..=hi);
                    Duration::from_millis(v.exp().round().max(1.0) as u64)
                })
                .collect()
        }
        PeriodModel::Grid(grid) => {
            assert!(!grid.is_empty(), "period grid must be non-empty");
            (0..n)
                .map(|_| {
                    let i = rng.random_range(0..grid.len());
                    Duration::from_millis(grid[i])
                })
                .collect()
        }
    }
}

/// Computes WCETs `C = U·T` in nanoseconds (at least 1 ns so every task
/// does *some* work).
#[must_use]
pub fn wcets_from_utilisation(utils: &[f64], periods: &[Duration]) -> Vec<Duration> {
    utils
        .iter()
        .zip(periods)
        .map(|(u, t)| {
            let ns = (u * t.as_nanos() as f64).round().max(1.0) as u64;
            Duration::from_nanos(ns)
        })
        .collect()
}

/// Draws constrained deadlines `D ∈ [C + f·(T−C), T]` with `f` uniform in
/// `[0,1]` — the standard way to generate constrained-deadline task sets
/// without making them trivially infeasible.
#[must_use]
pub fn constrained_deadlines(wcets: &[Duration], periods: &[Duration], seed: u64) -> Vec<Duration> {
    let mut rng = StdRng::seed_from_u64(seed);
    wcets
        .iter()
        .zip(periods)
        .map(|(c, t)| {
            let slack = t.saturating_sub(*c);
            let f: f64 = rng.random_range(0.0..=1.0);
            let extra = Duration::from_nanos((slack.as_nanos() as f64 * f) as u64);
            (*c + extra).min(*t)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_uniform_in_range() {
        let p = periods(
            100,
            PeriodModel::LogUniform {
                min_ms: 10,
                max_ms: 1000,
            },
            1,
        );
        assert_eq!(p.len(), 100);
        for t in &p {
            assert!(*t >= Duration::from_millis(10) && *t <= Duration::from_millis(1000));
        }
        // Log-uniform: roughly half the mass below sqrt(10*1000) = 100ms.
        let below = p
            .iter()
            .filter(|t| **t <= Duration::from_millis(100))
            .count();
        assert!((30..=70).contains(&below), "below = {below}");
    }

    #[test]
    fn grid_members_only() {
        let p = periods(50, PeriodModel::Grid(GRID_1S), 2);
        for t in p {
            assert!(GRID_1S.contains(&t.as_millis()));
        }
    }

    #[test]
    fn wcet_matches_utilisation() {
        let utils = [0.5, 0.25];
        let ps = [Duration::from_millis(10), Duration::from_millis(100)];
        let cs = wcets_from_utilisation(&utils, &ps);
        assert_eq!(cs[0], Duration::from_millis(5));
        assert_eq!(cs[1], Duration::from_millis(25));
    }

    #[test]
    fn wcet_never_zero() {
        let cs = wcets_from_utilisation(&[1e-15], &[Duration::from_millis(1)]);
        assert_eq!(cs[0], Duration::from_nanos(1));
    }

    #[test]
    fn deadlines_between_wcet_and_period() {
        let cs = [Duration::from_millis(2), Duration::from_millis(8)];
        let ps = [Duration::from_millis(10), Duration::from_millis(10)];
        for seed in 0..20 {
            let ds = constrained_deadlines(&cs, &ps, seed);
            for ((d, c), t) in ds.iter().zip(&cs).zip(&ps) {
                assert!(d >= c && d <= t, "D={d} C={c} T={t}");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = periods(10, PeriodModel::Grid(GRID_1S), 7);
        let b = periods(10, PeriodModel::Grid(GRID_1S), 7);
        assert_eq!(a, b);
    }
}
