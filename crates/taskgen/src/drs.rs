//! The Dirichlet-Rescale (DRS) task-set generator.
//!
//! The paper's Figure 2 experiment uses "the task set generator based on
//! the Dirichlet-Rescale (DRS) algorithm [Griffin, Bate & Davis 2020],
//! which allows us to uniformly generate task sets with varying
//! utilisation" (§4.1). DRS samples a utilisation vector uniformly from
//! the simplex
//!
//! ```text
//! { u | Σ uᵢ = U,  loᵢ ≤ uᵢ ≤ hiᵢ }
//! ```
//!
//! The implementation follows the algorithm's structure: shift out the
//! lower bounds, draw from the flat Dirichlet distribution via exponential
//! spacings, and repeatedly *rescale* mass exceeding an upper bound onto
//! the remaining coordinates until the draw is feasible. The invariants
//! (sum preserved, bounds respected) are property-tested.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Errors from [`drs`].
#[derive(Debug, Clone, PartialEq)]
pub enum DrsError {
    /// `Σ lo > U` or `Σ hi < U`: the constrained simplex is empty.
    Infeasible {
        /// The requested total utilisation.
        total: f64,
        /// Sum of lower bounds.
        lo_sum: f64,
        /// Sum of upper bounds.
        hi_sum: f64,
    },
    /// Mismatched bound vector lengths.
    BadBounds,
}

impl std::fmt::Display for DrsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DrsError::Infeasible {
                total,
                lo_sum,
                hi_sum,
            } => write!(
                f,
                "no utilisation vector sums to {total} within bounds [{lo_sum}, {hi_sum}]"
            ),
            DrsError::BadBounds => f.write_str("bound vectors must match the task count"),
        }
    }
}

impl std::error::Error for DrsError {}

/// Draws `n` utilisations summing to `total`, each within `[0, cap]`,
/// uniformly (up to rescaling) over the constrained simplex.
///
/// # Errors
///
/// [`DrsError::Infeasible`] when `total > n·cap`.
pub fn drs(n: usize, total: f64, cap: f64, seed: u64) -> Result<Vec<f64>, DrsError> {
    drs_bounded(&vec![0.0; n], &vec![cap; n], total, seed)
}

/// Full DRS with per-task bounds `lo ≤ u ≤ hi`.
///
/// # Errors
///
/// [`DrsError::BadBounds`] on mismatched lengths, [`DrsError::Infeasible`]
/// when the constrained simplex is empty.
pub fn drs_bounded(lo: &[f64], hi: &[f64], total: f64, seed: u64) -> Result<Vec<f64>, DrsError> {
    if lo.len() != hi.len() || lo.is_empty() {
        return Err(DrsError::BadBounds);
    }
    if lo.iter().zip(hi).any(|(l, h)| l > h || *l < 0.0) {
        return Err(DrsError::BadBounds);
    }
    let n = lo.len();
    let lo_sum: f64 = lo.iter().sum();
    let hi_sum: f64 = hi.iter().sum();
    const EPS: f64 = 1e-12;
    if lo_sum > total + EPS || hi_sum < total - EPS {
        return Err(DrsError::Infeasible {
            total,
            lo_sum,
            hi_sum,
        });
    }

    // Shift out the lower bounds: sample x with Σx = total - Σlo,
    // 0 ≤ xᵢ ≤ hiᵢ - loᵢ.
    let budget = (total - lo_sum).max(0.0);
    let caps: Vec<f64> = lo.iter().zip(hi).map(|(l, h)| h - l).collect();
    let mut rng = StdRng::seed_from_u64(seed);

    // Flat Dirichlet draw via exponential spacings.
    let mut x: Vec<f64> = (0..n)
        .map(|_| {
            let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
            -u.ln()
        })
        .collect();
    let s: f64 = x.iter().sum();
    for v in &mut x {
        *v = *v / s * budget;
    }

    // Rescale: clamp coordinates above their cap and redistribute the
    // excess proportionally to remaining headroom. Converges because the
    // set of saturated coordinates grows monotonically.
    for _ in 0..n + 2 {
        let mut excess = 0.0;
        let mut headroom = 0.0;
        for i in 0..n {
            if x[i] > caps[i] {
                excess += x[i] - caps[i];
                x[i] = caps[i];
            } else {
                headroom += caps[i] - x[i];
            }
        }
        if excess <= EPS {
            break;
        }
        if headroom <= EPS {
            // Fully saturated: distribute evenly over all (numerically
            // possible only when total ≈ Σhi).
            break;
        }
        // Redistribute with a random Dirichlet weighting over headroom so
        // the rescale step stays stochastic (as in the published DRS).
        let weights: Vec<f64> = (0..n)
            .map(|i| {
                if x[i] < caps[i] {
                    let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
                    -u.ln() * (caps[i] - x[i])
                } else {
                    0.0
                }
            })
            .collect();
        let wsum: f64 = weights.iter().sum();
        for i in 0..n {
            if weights[i] > 0.0 {
                x[i] += excess * weights[i] / wsum;
            }
        }
    }
    // Final safety clamp + exact renormalisation of residual drift.
    for i in 0..n {
        x[i] = x[i].clamp(0.0, caps[i]);
    }
    let drift: f64 = budget - x.iter().sum::<f64>();
    if drift.abs() > EPS {
        // Put the drift on the coordinate with most headroom.
        let (i, _) = caps.iter().zip(&x).map(|(c, v)| c - v).enumerate().fold(
            (0, f64::MIN),
            |acc, (i, h)| if h > acc.1 { (i, h) } else { acc },
        );
        x[i] = (x[i] + drift).clamp(0.0, caps[i]);
    }

    Ok(x.iter().zip(lo).map(|(v, l)| v + l).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(v: &[f64], lo: &[f64], hi: &[f64], total: f64) {
        let s: f64 = v.iter().sum();
        assert!((s - total).abs() < 1e-6, "sum {s} != {total}");
        for (i, u) in v.iter().enumerate() {
            assert!(
                *u >= lo[i] - 1e-9 && *u <= hi[i] + 1e-9,
                "u[{i}] = {u} outside [{}, {}]",
                lo[i],
                hi[i]
            );
        }
    }

    #[test]
    fn basic_draw_in_bounds() {
        for seed in 0..50 {
            let v = drs(10, 2.0, 1.0, seed).unwrap();
            check(&v, &[0.0; 10], &[1.0; 10], 2.0);
        }
    }

    #[test]
    fn tight_total_near_capacity() {
        // total = 3.9 with 4 tasks capped at 1.0: heavy rescaling needed.
        for seed in 0..50 {
            let v = drs(4, 3.9, 1.0, seed).unwrap();
            check(&v, &[0.0; 4], &[1.0; 4], 3.9);
        }
    }

    #[test]
    fn per_task_bounds_respected() {
        let lo = [0.1, 0.0, 0.2, 0.0];
        let hi = [0.3, 0.5, 0.9, 0.4];
        for seed in 0..50 {
            let v = drs_bounded(&lo, &hi, 1.0, seed).unwrap();
            check(&v, &lo, &hi, 1.0);
        }
    }

    #[test]
    fn infeasible_detected() {
        assert!(matches!(
            drs(2, 3.0, 1.0, 0),
            Err(DrsError::Infeasible { .. })
        ));
        assert!(matches!(
            drs_bounded(&[0.9, 0.9], &[1.0, 1.0], 1.0, 0),
            Err(DrsError::Infeasible { .. })
        ));
    }

    #[test]
    fn bad_bounds_detected() {
        assert_eq!(
            drs_bounded(&[0.0], &[1.0, 1.0], 0.5, 0),
            Err(DrsError::BadBounds)
        );
        assert_eq!(drs_bounded(&[], &[], 0.5, 0), Err(DrsError::BadBounds));
        assert_eq!(
            drs_bounded(&[0.5], &[0.2], 0.3, 0),
            Err(DrsError::BadBounds)
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(drs(8, 1.6, 1.0, 99).unwrap(), drs(8, 1.6, 1.0, 99).unwrap());
        assert_ne!(drs(8, 1.6, 1.0, 99).unwrap(), drs(8, 1.6, 1.0, 98).unwrap());
    }

    #[test]
    fn exact_saturation() {
        // total equals the sum of caps: every coordinate pinned.
        let v = drs(3, 3.0, 1.0, 5).unwrap();
        check(&v, &[0.0; 3], &[1.0; 3], 3.0);
        for u in v {
            assert!((u - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn spread_is_not_degenerate() {
        // Mean over many draws should be near total/n for symmetric bounds.
        let n = 5;
        let total = 1.0;
        let mut means = vec![0.0; n];
        let draws = 200;
        for seed in 0..draws {
            let v = drs(n, total, 1.0, seed).unwrap();
            for (m, u) in means.iter_mut().zip(v) {
                *m += u / draws as f64;
            }
        }
        for m in means {
            assert!((m - 0.2).abs() < 0.05, "biased coordinate mean {m}");
        }
    }
}
