//! Assembling generated parameters into concrete [`TaskSet`]s.
//!
//! The Figure 2 experiment generates independent sporadic task sets via
//! DRS and runs them under YASMIN and the Mollison & Anderson library
//! (§4.1); [`build_independent`] produces exactly that shape. For
//! partitioned configurations, [`assign_worst_fit`] packs tasks onto
//! workers with worst-fit-decreasing by utilisation.

use crate::drs::{drs, DrsError};
use crate::periods::{periods, wcets_from_utilisation, PeriodModel};
use yasmin_core::error::Result;
use yasmin_core::graph::{TaskSet, TaskSetBuilder};
use yasmin_core::ids::WorkerId;
use yasmin_core::task::TaskSpec;
use yasmin_core::time::Duration;
use yasmin_core::version::VersionSpec;

/// Parameters of a generated independent task set.
#[derive(Clone, Debug)]
pub struct IndependentSetParams {
    /// Number of tasks.
    pub n: usize,
    /// Total utilisation (may exceed 1 for multicore).
    pub total_utilisation: f64,
    /// Per-task utilisation cap (1.0 = any single core can host it).
    pub cap: f64,
    /// Period model.
    pub periods: PeriodModel,
    /// Random seed (drives both DRS and the period draw).
    pub seed: u64,
    /// Whether tasks are periodic (`false` = sporadic with the period as
    /// minimum inter-arrival, as in the paper's task model).
    pub periodic: bool,
}

impl Default for IndependentSetParams {
    fn default() -> Self {
        IndependentSetParams {
            n: 20,
            total_utilisation: 1.0,
            cap: 1.0,
            periods: PeriodModel::Grid(crate::periods::GRID_1S),
            seed: 0,
            periodic: true,
        }
    }
}

/// Generated parameters before conversion to a [`TaskSet`] (exposed so
/// baselines that do not use the YASMIN task model can reuse them).
#[derive(Clone, Debug)]
pub struct GeneratedTask {
    /// Task name (`tN`).
    pub name: String,
    /// Utilisation.
    pub utilisation: f64,
    /// Period / minimum inter-arrival.
    pub period: Duration,
    /// Worst-case execution time (`U·T`).
    pub wcet: Duration,
}

/// Draws the raw parameter list for an independent set.
///
/// # Errors
///
/// Propagates [`DrsError`] for infeasible utilisation requests.
pub fn generate_params(
    p: &IndependentSetParams,
) -> std::result::Result<Vec<GeneratedTask>, DrsError> {
    let utils = drs(p.n, p.total_utilisation, p.cap, p.seed)?;
    let ts = periods(p.n, p.periods, p.seed.wrapping_add(0x9e37_79b9));
    let cs = wcets_from_utilisation(&utils, &ts);
    Ok(utils
        .into_iter()
        .zip(ts)
        .zip(cs)
        .enumerate()
        .map(|(i, ((u, t), c))| GeneratedTask {
            name: format!("t{i}"),
            utilisation: u,
            period: t,
            wcet: c,
        })
        .collect())
}

/// Builds an independent (edge-free) task set with one version per task.
///
/// # Errors
///
/// Utilisation-generation errors are surfaced as
/// [`yasmin_core::error::Error::InvalidConfig`]; builder validation errors
/// pass through.
pub fn build_independent(p: &IndependentSetParams) -> Result<TaskSet> {
    let params =
        generate_params(p).map_err(|e| yasmin_core::error::Error::InvalidConfig(e.to_string()))?;
    let mut b = TaskSetBuilder::new();
    for g in &params {
        let spec = if p.periodic {
            TaskSpec::periodic(&g.name, g.period)
        } else {
            TaskSpec::sporadic(&g.name, g.period)
        };
        let id = b.task_decl(spec)?;
        b.version_decl(id, VersionSpec::new(format!("{}-v0", g.name), g.wcet))?;
    }
    b.build()
}

/// Worst-fit-decreasing partitioning by utilisation: returns, for each
/// task index, the worker it is assigned to. Balances load, which is the
/// standard heuristic for partitioned EDF/DM experiments.
///
/// # Panics
///
/// Panics if `workers == 0`.
#[must_use]
pub fn assign_worst_fit(utilisations: &[f64], workers: usize) -> Vec<WorkerId> {
    assert!(workers > 0, "need at least one worker");
    let mut order: Vec<usize> = (0..utilisations.len()).collect();
    order.sort_by(|&a, &b| {
        utilisations[b]
            .partial_cmp(&utilisations[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut load = vec![0.0f64; workers];
    let mut out = vec![WorkerId::new(0); utilisations.len()];
    for i in order {
        let (w, _) = load
            .iter()
            .enumerate()
            .min_by(|(wa, la), (wb, lb)| {
                la.partial_cmp(lb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(wa.cmp(wb))
            })
            .expect("workers > 0");
        out[i] = WorkerId::new(w as u16);
        load[w] += utilisations[i];
    }
    out
}

/// Re-builds `set`-like parameters into a partitioned task set: same
/// tasks, each pinned by worst-fit-decreasing.
///
/// # Errors
///
/// Same as [`build_independent`].
pub fn build_partitioned(p: &IndependentSetParams, workers: usize) -> Result<TaskSet> {
    let params =
        generate_params(p).map_err(|e| yasmin_core::error::Error::InvalidConfig(e.to_string()))?;
    let utils: Vec<f64> = params.iter().map(|g| g.utilisation).collect();
    let assign = assign_worst_fit(&utils, workers);
    let mut b = TaskSetBuilder::new();
    for (g, w) in params.iter().zip(assign) {
        let spec = if p.periodic {
            TaskSpec::periodic(&g.name, g.period).on_worker(w)
        } else {
            TaskSpec::sporadic(&g.name, g.period).on_worker(w)
        };
        let id = b.task_decl(spec)?;
        b.version_decl(id, VersionSpec::new(format!("{}-v0", g.name), g.wcet))?;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_set_shape() {
        let p = IndependentSetParams {
            n: 30,
            total_utilisation: 1.6,
            seed: 3,
            ..IndependentSetParams::default()
        };
        let ts = build_independent(&p).unwrap();
        assert_eq!(ts.len(), 30);
        assert!(ts.edges().is_empty());
        let u = ts.total_utilization_max();
        assert!((u - 1.6).abs() < 1e-3, "u = {u}");
    }

    #[test]
    fn sporadic_flag_respected() {
        let p = IndependentSetParams {
            n: 5,
            periodic: false,
            ..IndependentSetParams::default()
        };
        let ts = build_independent(&p).unwrap();
        for t in ts.tasks() {
            assert_eq!(t.spec().kind(), yasmin_core::task::ActivationKind::Sporadic);
        }
    }

    #[test]
    fn infeasible_utilisation_rejected() {
        let p = IndependentSetParams {
            n: 2,
            total_utilisation: 5.0,
            ..IndependentSetParams::default()
        };
        assert!(build_independent(&p).is_err());
    }

    #[test]
    fn worst_fit_balances() {
        let utils = [0.9, 0.8, 0.2, 0.1, 0.5, 0.5];
        let assign = assign_worst_fit(&utils, 3);
        let mut load = [0.0; 3];
        for (u, w) in utils.iter().zip(&assign) {
            load[w.index()] += u;
        }
        let max = load.iter().cloned().fold(f64::MIN, f64::max);
        let min = load.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max - min < 0.55, "unbalanced: {load:?}");
    }

    #[test]
    fn partitioned_build_assigns_everyone() {
        let p = IndependentSetParams {
            n: 12,
            total_utilisation: 1.5,
            seed: 9,
            ..IndependentSetParams::default()
        };
        let ts = build_partitioned(&p, 2).unwrap();
        for t in ts.tasks() {
            let w = t.spec().assigned_worker().expect("assigned");
            assert!(w.index() < 2);
        }
    }

    #[test]
    fn deterministic_generation() {
        let p = IndependentSetParams {
            n: 10,
            seed: 42,
            ..IndependentSetParams::default()
        };
        let a = generate_params(&p).unwrap();
        let b = generate_params(&p).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.period, y.period);
            assert_eq!(x.wcet, y.wcet);
        }
    }
}
