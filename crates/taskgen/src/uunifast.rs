//! The UUniFast and UUniFast-Discard utilisation generators.
//!
//! UUniFast (Bini & Buttazzo 2005) draws task-utilisation vectors that sum
//! to a target `U`, uniformly over the (unbounded) simplex. It is the
//! classical baseline the DRS paper \[20\] improves on; we provide both so
//! the experiment harness can cross-check generator bias.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Draws `n` utilisations summing to `total`, uniformly over the simplex.
///
/// Individual values may exceed 1 when `total > 1`; use
/// [`uunifast_discard`] to reject such vectors for multiprocessor
/// experiments.
///
/// # Panics
///
/// Panics if `n == 0` or `total` is not finite-positive.
#[must_use]
pub fn uunifast(n: usize, total: f64, seed: u64) -> Vec<f64> {
    assert!(n > 0, "need at least one task");
    assert!(
        total > 0.0 && total.is_finite(),
        "utilisation must be positive"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    uunifast_with(&mut rng, n, total)
}

/// [`uunifast`] drawing from a caller-provided generator.
#[must_use]
pub fn uunifast_with(rng: &mut StdRng, n: usize, total: f64) -> Vec<f64> {
    let mut out = Vec::with_capacity(n);
    let mut sum = total;
    for i in 1..n {
        let r: f64 = rng.random_range(0.0..1.0);
        let next = sum * r.powf(1.0 / (n - i) as f64);
        out.push(sum - next);
        sum = next;
    }
    out.push(sum);
    out
}

/// UUniFast-Discard (Davis & Burns 2009): redraws until every utilisation
/// is at most `cap` (typically 1.0). Returns `None` after `max_tries`
/// failed draws — callers should treat that as an infeasible request
/// (`total > n·cap` can never succeed).
#[must_use]
pub fn uunifast_discard(
    n: usize,
    total: f64,
    cap: f64,
    seed: u64,
    max_tries: usize,
) -> Option<Vec<f64>> {
    if total > cap * n as f64 {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..max_tries {
        let v = uunifast_with(&mut rng, n, total);
        if v.iter().all(|&u| u <= cap) {
            return Some(v);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_sums_to(v: &[f64], total: f64) {
        let s: f64 = v.iter().sum();
        assert!((s - total).abs() < 1e-9, "sum {s} != {total}");
    }

    #[test]
    fn sums_to_target() {
        for seed in 0..20 {
            let v = uunifast(10, 0.8, seed);
            assert_eq!(v.len(), 10);
            assert_sums_to(&v, 0.8);
            assert!(v.iter().all(|&u| u >= 0.0));
        }
    }

    #[test]
    fn single_task_gets_everything() {
        let v = uunifast(1, 0.5, 7);
        assert_eq!(v, vec![0.5]);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(uunifast(5, 1.5, 42), uunifast(5, 1.5, 42));
        assert_ne!(uunifast(5, 1.5, 42), uunifast(5, 1.5, 43));
    }

    #[test]
    fn discard_respects_cap() {
        let v = uunifast_discard(4, 2.0, 1.0, 3, 1000).unwrap();
        assert_sums_to(&v, 2.0);
        assert!(v.iter().all(|&u| u <= 1.0));
    }

    #[test]
    fn discard_rejects_impossible() {
        assert!(uunifast_discard(2, 3.0, 1.0, 1, 100).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn zero_tasks_panics() {
        let _ = uunifast(0, 1.0, 0);
    }
}
