//! A textual task-set format — the entry point of the paper's
//! coordination tool-chain.
//!
//! YASMIN "is part of a more comprehensive endeavour … application
//! components, their functional interplay, timing properties and
//! requirements can be specified in a high-level coordination DSL" whose
//! compiler emits the middleware declarations (§1). This module provides
//! the equivalent front door: a small line-oriented format parsed into a
//! validated [`TaskSet`], so workloads can live in files instead of code.
//!
//! # Format
//!
//! ```text
//! # comments and blank lines are ignored
//! accel  gpu
//! task   fetch    periodic 500ms
//! task   fc       sporadic 10ms deadline=8ms offset=1ms worker=0 prio=7
//! task   detect   node
//! version detect  gpu-impl wcet=130ms accel=gpu energy=780mJ budget=780mJ
//! version detect  cpu-impl wcet=230ms
//! channel frames  cap=2 elem=64
//! connect fetch detect frames
//! ```
//!
//! Durations accept `ns`, `us`, `ms`, `s`; energies accept `uJ`, `mJ`.

use std::collections::HashMap;
use yasmin_core::energy::Energy;
use yasmin_core::error::{Error, Result};
use yasmin_core::graph::{TaskSet, TaskSetBuilder};
use yasmin_core::ids::{AccelId, ChannelId, TaskId, WorkerId};
use yasmin_core::priority::Priority;
use yasmin_core::task::TaskSpec;
use yasmin_core::time::Duration;
use yasmin_core::version::VersionSpec;

fn parse_err(line_no: usize, msg: impl std::fmt::Display) -> Error {
    Error::InvalidConfig(format!("taskset dsl line {line_no}: {msg}"))
}

/// Parses a duration literal like `130ms`, `44us`, `2s`, `800ns`.
///
/// # Errors
///
/// [`Error::InvalidConfig`] on malformed input.
pub fn parse_duration(s: &str) -> Result<Duration> {
    let (num, unit) = s
        .find(|c: char| c.is_ascii_alphabetic())
        .map(|i| s.split_at(i))
        .ok_or_else(|| Error::InvalidConfig(format!("duration `{s}` is missing a unit")))?;
    let value: u64 = num
        .parse()
        .map_err(|_| Error::InvalidConfig(format!("bad duration value `{num}`")))?;
    match unit {
        "ns" => Ok(Duration::from_nanos(value)),
        "us" => Ok(Duration::from_micros(value)),
        "ms" => Ok(Duration::from_millis(value)),
        "s" => Ok(Duration::from_secs(value)),
        other => Err(Error::InvalidConfig(format!("unknown time unit `{other}`"))),
    }
}

/// Parses an energy literal like `780mJ` or `120uJ`.
///
/// # Errors
///
/// [`Error::InvalidConfig`] on malformed input.
pub fn parse_energy(s: &str) -> Result<Energy> {
    let (num, unit) = s
        .find(|c: char| c.is_ascii_alphabetic())
        .map(|i| s.split_at(i))
        .ok_or_else(|| Error::InvalidConfig(format!("energy `{s}` is missing a unit")))?;
    let value: u64 = num
        .parse()
        .map_err(|_| Error::InvalidConfig(format!("bad energy value `{num}`")))?;
    match unit {
        "uJ" => Ok(Energy::from_microjoules(value)),
        "mJ" => Ok(Energy::from_millijoules(value)),
        other => Err(Error::InvalidConfig(format!(
            "unknown energy unit `{other}`"
        ))),
    }
}

fn kv_args(parts: &[&str]) -> HashMap<String, String> {
    parts
        .iter()
        .filter_map(|p| p.split_once('='))
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

/// Parses the textual format into a validated [`TaskSet`].
///
/// # Errors
///
/// [`Error::InvalidConfig`] with a line number for syntax problems, plus
/// every builder validation error (unknown names, cycles, …).
pub fn parse_taskset(input: &str) -> Result<TaskSet> {
    let mut b = TaskSetBuilder::new();
    let mut tasks: HashMap<String, TaskId> = HashMap::new();
    let mut accels: HashMap<String, AccelId> = HashMap::new();
    let mut channels: HashMap<String, ChannelId> = HashMap::new();

    for (i, raw) in input.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts[0] {
            "accel" => {
                let name = *parts
                    .get(1)
                    .ok_or_else(|| parse_err(line_no, "accel needs a name"))?;
                let id = b.hwaccel_decl(name);
                accels.insert(name.to_string(), id);
            }
            "task" => {
                let name = *parts
                    .get(1)
                    .ok_or_else(|| parse_err(line_no, "task needs a name"))?;
                let kind = *parts
                    .get(2)
                    .ok_or_else(|| parse_err(line_no, "task needs a kind"))?;
                let mut spec = match kind {
                    "periodic" | "sporadic" => {
                        let period =
                            parse_duration(parts.get(3).ok_or_else(|| {
                                parse_err(line_no, "recurring task needs a period")
                            })?)?;
                        if kind == "periodic" {
                            TaskSpec::periodic(name, period)
                        } else {
                            TaskSpec::sporadic(name, period)
                        }
                    }
                    "aperiodic" => TaskSpec::aperiodic(name),
                    "node" => TaskSpec::graph_node(name),
                    other => return Err(parse_err(line_no, format!("unknown kind `{other}`"))),
                };
                for (k, v) in kv_args(&parts[3..]) {
                    match k.as_str() {
                        "deadline" => spec = spec.with_constrained_deadline(parse_duration(&v)?),
                        "arbitrary_deadline" => {
                            spec = spec.with_arbitrary_deadline(parse_duration(&v)?);
                        }
                        "offset" => spec = spec.with_release_offset(parse_duration(&v)?),
                        "worker" => {
                            let w: u16 = v
                                .parse()
                                .map_err(|_| parse_err(line_no, "bad worker index"))?;
                            spec = spec.on_worker(WorkerId::new(w));
                        }
                        "prio" => {
                            let p: u64 =
                                v.parse().map_err(|_| parse_err(line_no, "bad priority"))?;
                            spec = spec.with_priority(Priority::new(p));
                        }
                        other => {
                            return Err(parse_err(line_no, format!("unknown task arg `{other}`")))
                        }
                    }
                }
                let id = b.task_decl(spec)?;
                tasks.insert(name.to_string(), id);
            }
            "version" => {
                let task_name = *parts
                    .get(1)
                    .ok_or_else(|| parse_err(line_no, "version needs a task"))?;
                let vname = *parts
                    .get(2)
                    .ok_or_else(|| parse_err(line_no, "version needs a name"))?;
                let args = kv_args(&parts[3..]);
                let wcet = parse_duration(
                    args.get("wcet")
                        .ok_or_else(|| parse_err(line_no, "version needs wcet=<dur>"))?,
                )?;
                let mut v = VersionSpec::new(vname, wcet);
                if let Some(e) = args.get("energy") {
                    v = v.with_energy(parse_energy(e)?);
                }
                if let Some(e) = args.get("budget") {
                    v = v.with_energy_budget(parse_energy(e)?);
                }
                if let Some(a) = args.get("accel") {
                    let id = accels
                        .get(a)
                        .ok_or_else(|| parse_err(line_no, format!("unknown accel `{a}`")))?;
                    v = v.with_accel(*id);
                }
                let task = tasks
                    .get(task_name)
                    .ok_or_else(|| parse_err(line_no, format!("unknown task `{task_name}`")))?;
                b.version_decl(*task, v)?;
            }
            "channel" => {
                let name = *parts
                    .get(1)
                    .ok_or_else(|| parse_err(line_no, "channel needs a name"))?;
                let args = kv_args(&parts[2..]);
                let cap: usize = args
                    .get("cap")
                    .ok_or_else(|| parse_err(line_no, "channel needs cap=<n>"))?
                    .parse()
                    .map_err(|_| parse_err(line_no, "bad channel capacity"))?;
                let elem: usize = args
                    .get("elem")
                    .map_or(Ok(0), |v| v.parse())
                    .map_err(|_| parse_err(line_no, "bad channel elem size"))?;
                let id = b.channel_decl(name, cap, elem);
                channels.insert(name.to_string(), id);
            }
            "connect" => {
                let src = *parts
                    .get(1)
                    .ok_or_else(|| parse_err(line_no, "connect needs src dst channel"))?;
                let dst = *parts
                    .get(2)
                    .ok_or_else(|| parse_err(line_no, "connect needs src dst channel"))?;
                let ch = *parts
                    .get(3)
                    .ok_or_else(|| parse_err(line_no, "connect needs src dst channel"))?;
                let src = tasks
                    .get(src)
                    .ok_or_else(|| parse_err(line_no, format!("unknown task `{src}`")))?;
                let dst = tasks
                    .get(dst)
                    .ok_or_else(|| parse_err(line_no, format!("unknown task `{dst}`")))?;
                let ch = channels
                    .get(ch)
                    .ok_or_else(|| parse_err(line_no, format!("unknown channel `{ch}`")))?;
                b.channel_connect(*src, *dst, *ch)?;
            }
            other => return Err(parse_err(line_no, format!("unknown directive `{other}`"))),
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    const DIAMOND: &str = r"
        # the paper's diamond example
        accel   qrng
        task    fork  periodic 250ms
        task    left  node
        task    right node
        task    join  node
        version fork  f  wcet=60us
        version left  v1 wcet=90us budget=5mJ
        version left  v2 wcet=30us budget=11mJ accel=qrng
        version right r  wcet=80us energy=120uJ
        version join  j  wcet=50us
        channel fl cap=2 elem=0
        channel fr cap=2 elem=8
        channel lj cap=2 elem=4
        channel rj cap=4 elem=4
        connect fork left  fl
        connect fork right fr
        connect left join  lj
        connect right join rj
    ";

    #[test]
    fn parses_the_diamond() {
        let ts = parse_taskset(DIAMOND).unwrap();
        assert_eq!(ts.len(), 4);
        assert_eq!(ts.roots().count(), 1);
        assert_eq!(ts.accels().len(), 1);
        assert_eq!(ts.channels().len(), 4);
        let left = &ts.tasks()[1];
        assert_eq!(left.versions().len(), 2);
        assert_eq!(left.versions()[1].accel(), Some(AccelId::new(0)));
        assert_eq!(
            left.versions()[1].props().energy_budget,
            Some(Energy::from_millijoules(11))
        );
    }

    #[test]
    fn task_attributes_parse() {
        let ts = parse_taskset(
            "task t periodic 10ms deadline=8ms offset=1ms worker=1 prio=3\nversion t v wcet=1ms",
        )
        .unwrap();
        let spec = ts.tasks()[0].spec();
        assert_eq!(spec.relative_deadline(), Duration::from_millis(8));
        assert_eq!(spec.release_offset(), Duration::from_millis(1));
        assert_eq!(spec.assigned_worker(), Some(WorkerId::new(1)));
        assert_eq!(spec.static_priority(), Some(Priority::new(3)));
    }

    #[test]
    fn duration_units() {
        assert_eq!(parse_duration("5ns").unwrap(), Duration::from_nanos(5));
        assert_eq!(parse_duration("5us").unwrap(), Duration::from_micros(5));
        assert_eq!(parse_duration("5ms").unwrap(), Duration::from_millis(5));
        assert_eq!(parse_duration("5s").unwrap(), Duration::from_secs(5));
        assert!(parse_duration("5").is_err());
        assert!(parse_duration("ms").is_err());
        assert!(parse_duration("5h").is_err());
    }

    #[test]
    fn energy_units() {
        assert_eq!(parse_energy("7uJ").unwrap().as_microjoules(), 7);
        assert_eq!(parse_energy("7mJ").unwrap().as_microjoules(), 7_000);
        assert!(parse_energy("7J").is_err());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_taskset("task a periodic 10ms\nversion b v wcet=1ms").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let err = parse_taskset("frobnicate x").unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn builder_validation_still_applies() {
        // Unconnected channel is caught by the builder.
        let err =
            parse_taskset("task a periodic 10ms\nversion a v wcet=1ms\nchannel c cap=1 elem=1")
                .unwrap_err();
        assert!(matches!(err, Error::ChannelNotConnected(_)));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let ts = parse_taskset(
            "\n# nothing\n  \ntask a periodic 5ms # trailing\nversion a v wcet=1ms\n",
        )
        .unwrap();
        assert_eq!(ts.len(), 1);
    }
}
