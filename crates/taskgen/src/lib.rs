//! # yasmin-taskgen
//!
//! Workload generation for the YASMIN evaluation:
//!
//! * [`mod@drs`] — the Dirichlet-Rescale utilisation generator the paper's
//!   Figure 2 experiment uses (Griffin, Bate & Davis 2020);
//! * [`mod@uunifast`] — the classical UUniFast / UUniFast-Discard baselines;
//! * [`periods`] — period grids, log-uniform periods, WCETs, deadlines;
//! * [`taskset`] — assembly into validated `TaskSet`s, including
//!   worst-fit-decreasing partitioning;
//! * [`dag`] — random layered DAGs for the graph-based task model;
//! * [`drone`] — the Search & Rescue drone application of §5/Figure 3b;
//! * [`dsl`] — a textual task-set format (the coordination-DSL front door
//!   the paper's tool-chain feeds into YASMIN).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dag;
pub mod drone;
pub mod drs;
pub mod dsl;
pub mod periods;
pub mod taskset;
pub mod uunifast;

pub use dag::{build_dag, DagParams};
pub use drone::{DroneWorkload, VersionRestriction};
pub use drs::{drs, drs_bounded, DrsError};
pub use dsl::parse_taskset;
pub use taskset::{
    assign_worst_fit, build_independent, build_partitioned, generate_params, GeneratedTask,
    IndependentSetParams,
};
pub use uunifast::{uunifast, uunifast_discard};
