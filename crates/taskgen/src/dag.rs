//! Random layered DAG generation for graph-based task models.
//!
//! YASMIN supports "tasks grouped into graphs with precedence
//! constraints" (§2); this generator produces layered DAGs (fork-join
//! friendly, always acyclic by construction) to exercise the graph
//! activation machinery in tests and benchmarks.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use yasmin_core::error::Result;
use yasmin_core::graph::{TaskSet, TaskSetBuilder};
use yasmin_core::task::TaskSpec;
use yasmin_core::time::Duration;
use yasmin_core::version::VersionSpec;

/// Parameters of a random layered DAG.
#[derive(Clone, Debug)]
pub struct DagParams {
    /// Number of layers (≥ 1); layer 0 is the single root.
    pub layers: usize,
    /// Maximum width of the inner layers.
    pub max_width: usize,
    /// Probability (0–100) of an edge between consecutive-layer pairs, on
    /// top of the guaranteed connectivity edge per node.
    pub extra_edge_pct: u8,
    /// The graph period (the root's activation period).
    pub period: Duration,
    /// WCET range for every node, in microseconds.
    pub wcet_us: (u64, u64),
    /// Random seed.
    pub seed: u64,
}

impl Default for DagParams {
    fn default() -> Self {
        DagParams {
            layers: 4,
            max_width: 4,
            extra_edge_pct: 30,
            period: Duration::from_millis(100),
            wcet_us: (100, 2_000),
            seed: 0,
        }
    }
}

/// Generates one layered DAG task set: a single periodic root, then
/// `layers − 1` layers of inner nodes, each connected to at least one
/// node of the previous layer (so every node is reachable from the root).
///
/// # Errors
///
/// Builder validation errors (never expected for valid parameters).
///
/// # Panics
///
/// Panics if `layers == 0` or `max_width == 0` or an empty WCET range.
pub fn build_dag(p: &DagParams) -> Result<TaskSet> {
    assert!(p.layers >= 1, "need at least one layer");
    assert!(p.max_width >= 1, "need positive width");
    assert!(
        p.wcet_us.0 > 0 && p.wcet_us.0 <= p.wcet_us.1,
        "bad wcet range"
    );
    let mut rng = StdRng::seed_from_u64(p.seed);
    let mut b = TaskSetBuilder::new();

    let wcet =
        |rng: &mut StdRng| Duration::from_micros(rng.random_range(p.wcet_us.0..=p.wcet_us.1));

    let root = b.task_decl(TaskSpec::periodic("dag-root", p.period))?;
    let w0 = wcet(&mut rng);
    b.version_decl(root, VersionSpec::new("root-v0", w0))?;

    let mut prev_layer = vec![root];
    let mut chan = 0usize;
    for layer in 1..p.layers {
        let width = rng.random_range(1..=p.max_width);
        let mut this_layer = Vec::with_capacity(width);
        for i in 0..width {
            let t = b.task_decl(TaskSpec::graph_node(format!("dag-{layer}-{i}")))?;
            let w = wcet(&mut rng);
            b.version_decl(t, VersionSpec::new(format!("dag-{layer}-{i}-v0"), w))?;
            // Guaranteed edge from a random node of the previous layer.
            let src = prev_layer[rng.random_range(0..prev_layer.len())];
            let c = b.channel_decl(format!("c{chan}"), 1, 8);
            chan += 1;
            b.channel_connect(src, t, c)?;
            // Extra edges.
            for &src in &prev_layer {
                if rng.random_range(0..100u8) < p.extra_edge_pct {
                    // Skip duplicates of the guaranteed edge.
                    let c = b.channel_decl(format!("c{chan}"), 1, 8);
                    chan += 1;
                    if b.channel_connect(src, t, c).is_err() {
                        // Never happens: fresh channel each time.
                    }
                }
            }
            this_layer.push(t);
        }
        prev_layer = this_layer;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dag_is_connected_and_acyclic() {
        for seed in 0..20 {
            let p = DagParams {
                seed,
                ..DagParams::default()
            };
            let ts = build_dag(&p).unwrap(); // build() validates acyclicity
            assert_eq!(ts.roots().count(), 1);
            let root = ts.roots().next().unwrap().id();
            // Everything reachable from the root.
            assert_eq!(ts.component_of(root).len(), ts.len());
        }
    }

    #[test]
    fn inner_nodes_inherit_root_period() {
        let ts = build_dag(&DagParams::default()).unwrap();
        for t in ts.tasks() {
            assert_eq!(
                ts.effective_period(t.id()),
                Some(Duration::from_millis(100))
            );
        }
    }

    #[test]
    fn single_layer_is_just_the_root() {
        let p = DagParams {
            layers: 1,
            ..DagParams::default()
        };
        let ts = build_dag(&p).unwrap();
        assert_eq!(ts.len(), 1);
        assert!(ts.edges().is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let p = DagParams {
            seed: 11,
            ..DagParams::default()
        };
        let a = build_dag(&p).unwrap();
        let b = build_dag(&p).unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.edges().len(), b.edges().len());
    }

    #[test]
    fn wcets_within_range() {
        let p = DagParams {
            wcet_us: (500, 600),
            ..DagParams::default()
        };
        let ts = build_dag(&p).unwrap();
        for t in ts.tasks() {
            let w = t.versions()[0].wcet();
            assert!(w >= Duration::from_micros(500) && w <= Duration::from_micros(600));
        }
    }
}
