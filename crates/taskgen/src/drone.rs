//! The Search & Rescue (SAR) drone workload of §5 / Figure 3b.
//!
//! Two independent top-level tasks:
//!
//! 1. **FC msg handler** — a 100 Hz periodic task draining Mavlink
//!    messages from the flight controller. The figure prints its WCET as
//!    "170ms", which cannot be with a 10 ms period; consistent with the
//!    neighbouring µs-scale EXIF tasks we read it as **170 µs** (recorded
//!    as a substitution in EXPERIMENTS.md).
//! 2. **The frame pipeline** — a DAG released at 2 fps (T = 500 ms):
//!
//! ```text
//! fetch(44µs) → extract-exif(168µs) → augment-exif(57µs) → store(8µs)
//!     → detect-objects(GPU 130ms / CPU 230ms)
//!         → estimate-speed(GPU 108ms / CPU 224ms) ─┐
//!         → highlight-objects(GPU 170ms / CPU 242ms) ─┴→ create-packet(10µs)
//!     → encode(Plain 3ms / AES 100ms) → send(10µs)
//! ```
//!
//! Three image tasks have CUDA and CPU versions; `encode` has a plain and
//! an AES version switched by execution mode (normal vs secure — the
//! secure mode "is activated when boats are detected in the frame").

use yasmin_core::energy::{Energy, Power};
use yasmin_core::error::Result;
use yasmin_core::graph::{TaskSet, TaskSetBuilder};
use yasmin_core::ids::{AccelId, TaskId, WorkerId};
use yasmin_core::task::TaskSpec;
use yasmin_core::time::Duration;
use yasmin_core::version::{ExecMode, ModeMask, VersionSpec};

/// Which versions of the multi-version tasks to declare — the Figure 4
/// exploration axis ("we forced the scheduler to use only CPU version of
/// tasks, or only GPU version, or we allowed both versions and left the
/// scheduler decide").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum VersionRestriction {
    /// Only the CPU implementations.
    CpuOnly,
    /// Only the CUDA implementations (the GPU accelerator serialises
    /// them).
    GpuOnly,
    /// Both, selected by the scheduler at run time.
    Both,
}

impl VersionRestriction {
    /// Label used in the Figure 4 tables.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            VersionRestriction::CpuOnly => "cpu",
            VersionRestriction::GpuOnly => "gpu",
            VersionRestriction::Both => "both",
        }
    }

    /// All three restrictions, in the paper's presentation order.
    pub const ALL: [VersionRestriction; 3] = [
        VersionRestriction::CpuOnly,
        VersionRestriction::GpuOnly,
        VersionRestriction::Both,
    ];
}

/// The secure execution mode (AES encoding); mode 0 is normal.
pub const SECURE_MODE: ExecMode = ExecMode::new(1);

/// Handles to every task of the drone workload.
#[derive(Clone, Copy, Debug)]
pub struct DroneTasks {
    /// 100 Hz flight-control message handler (independent task).
    pub fc_handler: TaskId,
    /// Frame-pipeline root: fetch a frame at 2 fps.
    pub fetch: TaskId,
    /// EXIF extraction.
    pub extract: TaskId,
    /// EXIF augmentation with GPS data.
    pub augment: TaskId,
    /// Frame store.
    pub store: TaskId,
    /// Object detection (GPU/CPU versions).
    pub detect: TaskId,
    /// Speed estimation (GPU/CPU versions).
    pub estimate: TaskId,
    /// Object highlighting (GPU/CPU versions).
    pub highlight: TaskId,
    /// Ground-station packet creation.
    pub create: TaskId,
    /// Encoding (plain/AES versions, mode-switched).
    pub encode: TaskId,
    /// Transmission to the ground station.
    pub send: TaskId,
}

/// The assembled drone workload.
#[derive(Clone, Debug)]
pub struct DroneWorkload {
    /// The validated task set.
    pub taskset: TaskSet,
    /// Task handles.
    pub tasks: DroneTasks,
    /// The Kepler GPU accelerator.
    pub gpu: AccelId,
    /// The restriction this workload was built with.
    pub restriction: VersionRestriction,
}

/// Frame period: 2 frames per second.
pub const FRAME_PERIOD: Duration = Duration::from_millis(500);
/// Flight-control period: 100 Hz.
pub const FC_PERIOD: Duration = Duration::from_millis(10);

/// Builds the SAR workload for a global-scheduling configuration.
///
/// # Errors
///
/// Builder validation errors (never expected).
pub fn build(restriction: VersionRestriction) -> Result<DroneWorkload> {
    build_inner(restriction, None)
}

/// Builds the SAR workload with every task pinned for partitioned
/// configurations. The heavy image tasks are spread across workers; light
/// pipeline tasks share a worker with the FC handler.
///
/// # Errors
///
/// Builder validation errors; `workers` must be ≥ 1.
pub fn build_partitioned(restriction: VersionRestriction, workers: usize) -> Result<DroneWorkload> {
    assert!(workers >= 1, "need at least one worker");
    build_inner(restriction, Some(workers))
}

fn build_inner(restriction: VersionRestriction, workers: Option<usize>) -> Result<DroneWorkload> {
    let mut b = TaskSetBuilder::new();
    let gpu = b.hwaccel_decl_with_power("kepler-gpu", Power::from_watts(5));

    let pin = |spec: TaskSpec, slot: usize| -> TaskSpec {
        match workers {
            Some(w) => spec.on_worker(WorkerId::new((slot % w) as u16)),
            None => spec,
        }
    };

    // Independent flight-control task. Slot 0.
    let fc_handler = b.task_decl(pin(TaskSpec::periodic("fc-msg-handler", FC_PERIOD), 0))?;
    b.version_decl(
        fc_handler,
        VersionSpec::new("fc-v0", Duration::from_micros(170))
            .with_energy(Energy::from_microjoules(120)),
    )?;

    // Frame pipeline. Light tasks on slot 0, heavy image tasks spread
    // over the remaining workers.
    let fetch = b.task_decl(pin(TaskSpec::periodic("fetch-frame", FRAME_PERIOD), 0))?;
    b.version_decl(
        fetch,
        VersionSpec::new("fetch-v0", Duration::from_micros(44))
            .with_energy(Energy::from_microjoules(40)),
    )?;
    let extract = b.task_decl(pin(TaskSpec::graph_node("extract-exif"), 0))?;
    b.version_decl(
        extract,
        VersionSpec::new("extract-v0", Duration::from_micros(168))
            .with_energy(Energy::from_microjoules(150)),
    )?;
    let augment = b.task_decl(pin(TaskSpec::graph_node("augment-exif"), 0))?;
    b.version_decl(
        augment,
        VersionSpec::new("augment-v0", Duration::from_micros(57))
            .with_energy(Energy::from_microjoules(50)),
    )?;
    let store = b.task_decl(pin(TaskSpec::graph_node("store"), 0))?;
    b.version_decl(
        store,
        VersionSpec::new("store-v0", Duration::from_micros(8))
            .with_energy(Energy::from_microjoules(10)),
    )?;

    // The three CUDA/CPU tasks. WCETs straight from Figure 3b. Pinning
    // (partitioned mode): the 100 Hz FC handler keeps worker 0 to itself
    // plus the µs-scale pipeline stages; `detect`+`highlight` share
    // worker 1 (they are precedence-serialised anyway) and `estimate`
    // gets worker 2, so no accelerator-holding job ever blocks the FC
    // handler's worker.
    let detect = b.task_decl(pin(TaskSpec::graph_node("detect-objects"), 1))?;
    let estimate = b.task_decl(pin(TaskSpec::graph_node("estimate-speed"), 2))?;
    let highlight = b.task_decl(pin(TaskSpec::graph_node("highlight-objects"), 1))?;
    let image_tasks = [
        (detect, "detect", 130u64, 230u64),
        (estimate, "estimate", 108, 224),
        (highlight, "highlight", 170, 242),
    ];
    for (task, name, gpu_ms, cpu_ms) in image_tasks {
        if restriction != VersionRestriction::CpuOnly {
            let v = b.version_decl(
                task,
                VersionSpec::new(format!("{name}-gpu"), Duration::from_millis(gpu_ms))
                    .with_energy(Energy::from_millijoules(gpu_ms * 6))
                    .with_energy_budget(Energy::from_millijoules(gpu_ms * 6)),
            )?;
            b.hwaccel_use(task, v, gpu)?;
        }
        if restriction != VersionRestriction::GpuOnly {
            b.version_decl(
                task,
                VersionSpec::new(format!("{name}-cpu"), Duration::from_millis(cpu_ms))
                    .with_energy(Energy::from_millijoules(cpu_ms * 2))
                    .with_energy_budget(Energy::from_millijoules(cpu_ms * 2)),
            )?;
        }
    }

    let create = b.task_decl(pin(TaskSpec::graph_node("create-packet"), 0))?;
    b.version_decl(
        create,
        VersionSpec::new("create-v0", Duration::from_micros(10))
            .with_energy(Energy::from_microjoules(10)),
    )?;
    let encode = b.task_decl(pin(TaskSpec::graph_node("encode"), 2))?;
    // Plain in normal mode, AES in secure mode (§5: "a normal mode, and a
    // secure mode which is activated when boats are detected").
    b.version_decl(
        encode,
        VersionSpec::new("encode-plain", Duration::from_millis(3))
            .with_energy(Energy::from_millijoules(2))
            .with_modes(ModeMask::only(ExecMode::NORMAL)),
    )?;
    b.version_decl(
        encode,
        VersionSpec::new("encode-aes", Duration::from_millis(100))
            .with_energy(Energy::from_millijoules(60))
            .with_modes(ModeMask::only(SECURE_MODE)),
    )?;
    let send = b.task_decl(pin(TaskSpec::graph_node("send"), 0))?;
    b.version_decl(
        send,
        VersionSpec::new("send-v0", Duration::from_micros(10))
            .with_energy(Energy::from_microjoules(15)),
    )?;

    // Pipeline wiring (channel sizes: one frame in flight each).
    let chan = |b: &mut TaskSetBuilder, name: &str, src, dst| -> Result<()> {
        let c = b.channel_decl(name, 2, 64);
        b.channel_connect(src, dst, c)
    };
    chan(&mut b, "c-fetch-extract", fetch, extract)?;
    chan(&mut b, "c-extract-augment", extract, augment)?;
    chan(&mut b, "c-augment-store", augment, store)?;
    chan(&mut b, "c-store-detect", store, detect)?;
    chan(&mut b, "c-detect-estimate", detect, estimate)?;
    chan(&mut b, "c-detect-highlight", detect, highlight)?;
    chan(&mut b, "c-estimate-create", estimate, create)?;
    chan(&mut b, "c-highlight-create", highlight, create)?;
    chan(&mut b, "c-create-encode", create, encode)?;
    chan(&mut b, "c-encode-send", encode, send)?;

    let taskset = b.build()?;
    Ok(DroneWorkload {
        taskset,
        tasks: DroneTasks {
            fc_handler,
            fetch,
            extract,
            augment,
            store,
            detect,
            estimate,
            highlight,
            create,
            encode,
            send,
        },
        gpu,
        restriction,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_independent_components() {
        let w = build(VersionRestriction::Both).unwrap();
        assert_eq!(w.taskset.roots().count(), 2);
        assert_eq!(w.taskset.len(), 11);
        // The frame component holds 10 tasks; FC handler is alone.
        assert_eq!(w.taskset.component_of(w.tasks.fetch).len(), 10);
        assert_eq!(w.taskset.component_of(w.tasks.fc_handler).len(), 1);
    }

    #[test]
    fn figure_3b_wcets() {
        let w = build(VersionRestriction::Both).unwrap();
        let ts = &w.taskset;
        let detect = ts.task(w.tasks.detect).unwrap();
        assert_eq!(detect.versions().len(), 2);
        assert_eq!(detect.versions()[0].wcet(), Duration::from_millis(130));
        assert_eq!(detect.versions()[1].wcet(), Duration::from_millis(230));
        assert_eq!(detect.versions()[0].accel(), Some(w.gpu));
        assert_eq!(detect.versions()[1].accel(), None);
        let enc = ts.task(w.tasks.encode).unwrap();
        assert_eq!(enc.versions()[0].wcet(), Duration::from_millis(3));
        assert_eq!(enc.versions()[1].wcet(), Duration::from_millis(100));
    }

    #[test]
    fn restrictions_control_versions() {
        let cpu = build(VersionRestriction::CpuOnly).unwrap();
        let d = cpu.taskset.task(cpu.tasks.detect).unwrap();
        assert_eq!(d.versions().len(), 1);
        assert!(d.versions()[0].accel().is_none());

        let gpu = build(VersionRestriction::GpuOnly).unwrap();
        let d = gpu.taskset.task(gpu.tasks.detect).unwrap();
        assert_eq!(d.versions().len(), 1);
        assert!(d.versions()[0].accel().is_some());
    }

    #[test]
    fn graph_deadline_is_frame_period() {
        let w = build(VersionRestriction::Both).unwrap();
        for t in [w.tasks.detect, w.tasks.send, w.tasks.fetch] {
            assert_eq!(w.taskset.effective_deadline(t), FRAME_PERIOD);
        }
        assert_eq!(w.taskset.effective_deadline(w.tasks.fc_handler), FC_PERIOD);
    }

    #[test]
    fn scheduler_tick_is_fc_period() {
        let w = build(VersionRestriction::Both).unwrap();
        assert_eq!(w.taskset.scheduler_tick(), Some(FC_PERIOD));
        assert_eq!(w.taskset.hyperperiod(), Some(FRAME_PERIOD));
    }

    #[test]
    fn encode_versions_are_mode_gated() {
        let w = build(VersionRestriction::Both).unwrap();
        let enc = w.taskset.task(w.tasks.encode).unwrap();
        assert!(enc.versions()[0].props().modes.contains(ExecMode::NORMAL));
        assert!(!enc.versions()[0].props().modes.contains(SECURE_MODE));
        assert!(enc.versions()[1].props().modes.contains(SECURE_MODE));
    }

    #[test]
    fn partitioned_build_pins_everything() {
        let w = build_partitioned(VersionRestriction::Both, 3).unwrap();
        for t in w.taskset.tasks() {
            let worker = t.spec().assigned_worker().expect("pinned");
            assert!(worker.index() < 3);
        }
    }
}
