//! The real-thread YASMIN runtime (Fig. 1a/1b brought to life).
//!
//! One **scheduler thread** owns the scheduling engine, wakes at the gcd
//! tick (§3.3), processes completion notifications from workers between
//! ticks, and pushes dispatches into per-worker mailboxes. **Worker
//! threads** ("virtual CPUs") are pinned to cores best-effort and execute
//! registered version bodies to completion.
//!
//! Substitution note (DESIGN.md): the paper preempts workers with POSIX
//! signals and a hand-written `swapcontext`. Safe Rust cannot hijack a
//! thread asynchronously, so this runtime schedules **non-preemptively at
//! job boundaries** — configurations must set `preemption(false)`;
//! preemptive behaviour is exercised in the simulator, which drives the
//! same engine.
//!
//! Data channels: the engine tracks *activation tokens*; the actual data
//! travels through `yasmin_sync::spsc` endpoints captured inside the task
//! closures (the Rust analogue of the paper's macro-generated static
//! FIFO buffers — see `examples/quickstart.rs`).

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use yasmin_core::config::Config;
use yasmin_core::error::{Error, Result};
use yasmin_core::graph::TaskSet;
use yasmin_core::ids::{TaskId, TenantId, VersionId, WorkerId};
use yasmin_core::priority::Priority;
use yasmin_core::time::{Clock, Instant, MonotonicClock};
use yasmin_sched::admission::{reservation_for, AdmissionControl, AdmissionError};
use yasmin_sched::msg::{MsgEvent, NotifyHandle, Receiver as MsgReceiver, Sender as MsgSender};
use yasmin_sched::server::TenantBudget;
use yasmin_sched::{Action, ActionSink, EngineStats, Job, JobOutcome, OnlineEngine};
use yasmin_sync::wait::{wait_until, WaitMode};

/// Context handed to a task body for each job.
#[derive(Debug, Clone, Copy)]
pub struct JobCtx {
    /// The job being executed.
    pub job: Job,
    /// The version selected by the scheduler.
    pub version: VersionId,
    /// The worker (virtual CPU) executing it.
    pub worker: WorkerId,
}

/// A task-version body: the user function of `version_decl`.
pub type TaskBody = Arc<dyn Fn(&JobCtx) + Send + Sync>;

/// One completed job, as observed by the runtime.
#[derive(Debug, Clone, Copy)]
pub struct RtJobRecord {
    /// The job.
    pub job: Job,
    /// Version executed.
    pub version: VersionId,
    /// Worker that ran it.
    pub worker: WorkerId,
    /// When the body started.
    pub started: Instant,
    /// When the body returned.
    pub completed: Instant,
    /// Whether the body returned normally or panicked (panics are
    /// contained on the worker and retired as failures).
    pub outcome: JobOutcome,
}

impl RtJobRecord {
    /// Dispatch latency: body start − release.
    #[must_use]
    pub fn start_latency(&self) -> yasmin_core::time::Duration {
        self.started.saturating_since(self.job.release)
    }

    /// Response time: completion − release.
    #[must_use]
    pub fn response_time(&self) -> yasmin_core::time::Duration {
        self.completed.saturating_since(self.job.release)
    }

    /// `true` if the job completed past its deadline.
    #[must_use]
    pub fn missed(&self) -> bool {
        self.job.abs_deadline != Instant::MAX && self.completed > self.job.abs_deadline
    }
}

/// Final report returned by [`Runtime::cleanup`].
#[derive(Debug)]
pub struct RuntimeReport {
    /// Every completed job.
    pub records: Vec<RtJobRecord>,
    /// Engine counters.
    pub engine_stats: EngineStats,
}

enum WorkerMsg {
    Run {
        job: Job,
        version: VersionId,
        body: TaskBody,
    },
    Exit,
}

struct Completion {
    worker: WorkerId,
    job: Job,
    version: VersionId,
    started: Instant,
    completed: Instant,
    outcome: JobOutcome,
}

enum Cmd {
    Activate(TaskId),
    /// A high-priority message entered a channel lane: boost the
    /// receiving task through the engine's PIP machinery (see
    /// `yasmin_sched::msg`). Raised by the channel notify hooks wired in
    /// [`RuntimeBuilder::channel`], from whichever thread sent.
    MsgHigh {
        dst: TaskId,
        ceiling: Priority,
    },
    /// A high-lane message was consumed; the boost drops when the lane
    /// drains (posts and drains balance).
    MsgDrained {
        dst: TaskId,
    },
    /// Splice-and-commit an already-evaluated tenant (see
    /// [`Runtime::admit`]): the scheduler thread adopts the merged set,
    /// registers the tenant's bodies, arms its releases and replies with
    /// the assigned id — all between two engine rounds, so the splice is
    /// atomic with respect to scheduling decisions.
    Admit {
        merged: Arc<TaskSet>,
        bodies: HashMap<(TaskId, VersionId), TaskBody>,
        budget: Option<TenantBudget>,
        reply: Sender<Result<TenantId>>,
    },
    /// Quiesce a tenant: cull its ready jobs and stop its releases;
    /// in-flight jobs finish but fire no successors.
    Retire {
        tenant: TenantId,
        reply: Sender<Result<()>>,
    },
    Stop,
    Shutdown,
}

/// Builder mirroring the paper's init/declare phase.
pub struct RuntimeBuilder {
    taskset: Arc<TaskSet>,
    config: Config,
    bodies: HashMap<(TaskId, VersionId), TaskBody>,
    channels: Vec<NotifyHandle>,
    pin_offset: usize,
    lock_memory: bool,
}

impl RuntimeBuilder {
    /// Starts building a runtime for `taskset` under `config`.
    #[must_use]
    pub fn new(taskset: Arc<TaskSet>, config: Config) -> Self {
        RuntimeBuilder {
            taskset,
            config,
            bodies: HashMap::new(),
            channels: Vec::new(),
            pin_offset: 0,
            lock_memory: false,
        }
    }

    /// Opens the typed endpoints of a channel declared in the task set
    /// (`TaskSetBuilder::channel_decl` /
    /// `TaskSetBuilder::channel_decl_prioritized`) and registers its
    /// notify hook with the runtime: once built, a
    /// [`yasmin_sched::msg::Sender::send_high`] on this channel boosts
    /// the receiving task's pending job through the scheduler until the
    /// high lane drains. Capacity and element size are validated
    /// against the [`yasmin_core::channel::ChannelSpec`].
    ///
    /// Hand the [`yasmin_sched::msg::Sender`] to the producing task's
    /// body and the [`yasmin_sched::msg::Receiver`] to the consuming
    /// one (they are `Send + Sync`; capture them in the closures).
    ///
    /// # Errors
    ///
    /// [`Error::UnknownChannel`] / [`Error::ChannelNotConnected`] for a
    /// bad id, [`Error::InvalidConfig`] when `T` does not fit the
    /// spec's element size.
    pub fn channel<T: Send>(
        &mut self,
        id: yasmin_core::ids::ChannelId,
    ) -> Result<(MsgSender<T>, MsgReceiver<T>)> {
        let (tx, rx) = yasmin_sched::msg::channel(&self.taskset, id)?;
        self.channels.push(tx.notify_handle());
        Ok((tx, rx))
    }

    /// Registers a standalone channel (built with
    /// [`yasmin_sched::ChannelBuilder`], outside the task-set graph) so
    /// its high-lane traffic reaches this runtime's scheduler.
    #[must_use]
    pub fn register_channel(mut self, handle: NotifyHandle) -> Self {
        self.channels.push(handle);
        self
    }

    /// Registers the executable body of `(task, version)`.
    #[must_use]
    pub fn body(
        mut self,
        task: TaskId,
        version: VersionId,
        f: impl Fn(&JobCtx) + Send + Sync + 'static,
    ) -> Self {
        self.bodies.insert((task, version), Arc::new(f));
        self
    }

    /// Pins worker *w* to core `offset + w` (scheduler thread to
    /// `offset + workers`), best-effort.
    #[must_use]
    pub fn pin_cores_from(mut self, offset: usize) -> Self {
        self.pin_offset = offset;
        self
    }

    /// Calls `mlockall` at start (best-effort, §3.5).
    #[must_use]
    pub fn lock_memory(mut self) -> Self {
        self.lock_memory = true;
        self
    }

    /// Validates and spawns all threads; the schedule is *not* running
    /// when the engine's schedule starts (immediately on spawn).
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidConfig`] when preemption is enabled (see module
    ///   docs) or a version has no registered body;
    /// * engine construction errors (partition validation etc.).
    pub fn build(self) -> Result<Runtime> {
        if self.config.preemption() {
            return Err(Error::InvalidConfig(
                "the thread runtime schedules non-preemptively at job boundaries; \
                 build the Config with .preemption(false) (the simulator exercises \
                 preemptive configurations)"
                    .into(),
            ));
        }
        for t in self.taskset.tasks() {
            for (vi, _) in t.versions().iter().enumerate() {
                let key = (t.id(), VersionId::new(vi as u16));
                if !self.bodies.contains_key(&key) {
                    return Err(Error::InvalidConfig(format!(
                        "no body registered for task {} version v{vi}",
                        t.id()
                    )));
                }
            }
        }
        let engine = OnlineEngine::new(Arc::clone(&self.taskset), self.config.clone())?;
        if self.lock_memory {
            // Best-effort; containers commonly deny it.
            let _ = crate::os::lock_all_memory();
        }
        Runtime::spawn(self, engine)
    }
}

/// The running middleware: scheduler thread + pinned workers.
pub struct Runtime {
    cmd_tx: Sender<Cmd>,
    scheduler: Option<std::thread::JoinHandle<RuntimeReport>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    worker_tx: Vec<Sender<WorkerMsg>>,
    /// The current merged task set (grows with each admission) and the
    /// next tenant id, serialising admissions from concurrent callers.
    state: Mutex<(Arc<TaskSet>, u32)>,
    admission: AdmissionControl,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("workers", &self.worker_tx.len())
            .finish_non_exhaustive()
    }
}

impl Runtime {
    fn spawn(builder: RuntimeBuilder, mut engine: OnlineEngine) -> Result<Self> {
        let workers_n = builder.config.workers();
        let wait_mode = match builder.config.waiting() {
            yasmin_core::config::WaitChoice::Sleep => WaitMode::HybridSpin {
                spin_window_us: 200,
            },
            yasmin_core::config::WaitChoice::Spin => WaitMode::Spin,
        };
        let clock = Arc::new(MonotonicClock::new());
        let (done_tx, done_rx) = bounded::<Completion>(builder.config.max_pending_jobs());
        let (cmd_tx, cmd_rx) = bounded::<Cmd>(64);

        // Arm the channel notify hooks: a high-lane post/drain from any
        // thread becomes a scheduler command. Channels without a
        // declared ceiling never reach the scheduler.
        for handle in &builder.channels {
            if handle.ceiling().is_none() {
                continue;
            }
            let tx = cmd_tx.clone();
            let _ = handle.set_notify(Arc::new(move |ev| {
                let _ = match ev {
                    MsgEvent::HighPosted { dst, ceiling } => tx.send(Cmd::MsgHigh { dst, ceiling }),
                    MsgEvent::HighDrained { dst } => tx.send(Cmd::MsgDrained { dst }),
                };
            }));
        }

        // Worker threads.
        let mut worker_tx = Vec::with_capacity(workers_n);
        let mut workers = Vec::with_capacity(workers_n);
        for w in 0..workers_n {
            let (tx, rx) = bounded::<WorkerMsg>(builder.config.max_pending_jobs());
            worker_tx.push(tx);
            let done_tx = done_tx.clone();
            let clock = Arc::clone(&clock);
            let core = builder.pin_offset + w;
            workers.push(
                std::thread::Builder::new()
                    .name(format!("yasmin-worker-{w}"))
                    .spawn(move || {
                        let _ = crate::os::pin_current_thread(core);
                        worker_main(&rx, &done_tx, &clock, WorkerId::new(w as u16));
                    })
                    .map_err(|e| Error::Os(format!("spawning worker {w}: {e}")))?,
            );
        }

        // Scheduler thread.
        let bodies = builder.bodies;
        let sched_core = builder.pin_offset + workers_n;
        let worker_tx_sched = worker_tx.clone();
        let tick = engine.tick_period();
        let admission = AdmissionControl::for_engine(&engine);
        let scheduler = std::thread::Builder::new()
            .name("yasmin-scheduler".into())
            .spawn(move || {
                let _ = crate::os::pin_current_thread(sched_core);
                scheduler_main(
                    &mut engine,
                    bodies,
                    &worker_tx_sched,
                    &done_rx,
                    &cmd_rx,
                    &clock,
                    tick,
                    wait_mode,
                )
            })
            .map_err(|e| Error::Os(format!("spawning scheduler: {e}")))?;

        Ok(Runtime {
            cmd_tx,
            scheduler: Some(scheduler),
            workers,
            worker_tx,
            state: Mutex::new((builder.taskset, 1)),
            admission,
        })
    }

    /// Activates an aperiodic or sporadic task (the paper's
    /// `yas_task_activate`).
    ///
    /// # Errors
    ///
    /// [`Error::ScheduleNotRunning`] when the scheduler thread is gone.
    pub fn activate(&self, task: TaskId) -> Result<()> {
        self.cmd_tx
            .send(Cmd::Activate(task))
            .map_err(|_| Error::ScheduleNotRunning)
    }

    /// Admits a new tenant into the **running** schedule.
    ///
    /// `candidate` is the tenant's task set declared in its own id
    /// space; `bodies` maps its `(task, version)` pairs (candidate-local
    /// ids) to executable bodies; `budget`, when given, caps the
    /// tenant's processor share with a per-tenant reservation server.
    ///
    /// The schedulability check ([`AdmissionControl::evaluate`]) runs on
    /// the **caller's** thread — the paper's non-real-time admission
    /// path — and only an accepted tenant ever reaches the scheduler
    /// thread, which splices and commits it between two engine rounds.
    /// Existing tenants' scheduling is untouched either way. Returns the
    /// assigned [`TenantId`] (use it with [`Runtime::retire`]); task ids
    /// of the tenant are its candidate ids offset by the number of tasks
    /// admitted before it.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::Rejected`] names the violated analysis bound;
    /// [`AdmissionError::Invalid`] covers malformed requests (missing
    /// bodies, partition violations, a period off the running tick) and
    /// a scheduler that is no longer running.
    pub fn admit(
        &self,
        candidate: &TaskSet,
        bodies: HashMap<(TaskId, VersionId), TaskBody>,
        budget: Option<TenantBudget>,
    ) -> std::result::Result<TenantId, AdmissionError> {
        let mut state = self.state.lock().expect("admission mutex poisoned");
        check_candidate_bodies(candidate, &bodies)?;
        let merged = self
            .admission
            .evaluate(&state.0, candidate, budget.as_ref())?;
        let offset = state.0.len() as u32;
        let remapped = bodies
            .into_iter()
            .map(|((t, v), b)| ((TaskId::new(offset + t.raw()), v), b))
            .collect();
        let (reply_tx, reply_rx) = bounded(1);
        self.cmd_tx
            .send(Cmd::Admit {
                merged: Arc::clone(&merged),
                bodies: remapped,
                budget,
                reply: reply_tx,
            })
            .map_err(|_| AdmissionError::Invalid(Error::ScheduleNotRunning))?;
        let tenant = reply_rx
            .recv()
            .map_err(|_| AdmissionError::Invalid(Error::ScheduleNotRunning))?
            .map_err(AdmissionError::Invalid)?;
        state.0 = merged;
        state.1 = tenant.raw() + 1;
        Ok(tenant)
    }

    /// Retires an admitted tenant: its future releases stop, its ready
    /// jobs are culled, its in-flight jobs finish without firing
    /// successors. Other tenants are untouched. Returns once the
    /// scheduler thread has applied the retirement.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownTenant`] / [`Error::TenantRetired`] for bad ids
    /// or a double retire; [`Error::InvalidConfig`] for tenant 0 (the
    /// build-time set — use [`Runtime::stop`]);
    /// [`Error::ScheduleNotRunning`] when the scheduler is gone.
    pub fn retire(&self, tenant: TenantId) -> Result<()> {
        let (reply_tx, reply_rx) = bounded(1);
        self.cmd_tx
            .send(Cmd::Retire {
                tenant,
                reply: reply_tx,
            })
            .map_err(|_| Error::ScheduleNotRunning)?;
        reply_rx.recv().map_err(|_| Error::ScheduleNotRunning)?
    }

    /// Stops releasing new periodic jobs; in-flight jobs drain (the
    /// paper's `yas_stop`).
    pub fn stop(&self) {
        let _ = self.cmd_tx.send(Cmd::Stop);
    }

    /// Waits for all worker threads to finish and closes (the paper's
    /// `yas_cleanup`), returning the run report.
    ///
    /// # Panics
    ///
    /// Panics if a runtime thread panicked.
    #[must_use]
    pub fn cleanup(mut self) -> RuntimeReport {
        let _ = self.cmd_tx.send(Cmd::Shutdown);
        let report = self
            .scheduler
            .take()
            .expect("cleanup runs once")
            .join()
            .expect("scheduler thread panicked");
        for tx in &self.worker_tx {
            let _ = tx.send(WorkerMsg::Exit);
        }
        for w in self.workers.drain(..) {
            w.join().expect("worker thread panicked");
        }
        report
    }
}

/// Verifies every version of every candidate task has a registered body
/// (keyed by candidate-local ids) before any scheduler thread hears
/// about the tenant.
pub(crate) fn check_candidate_bodies(
    candidate: &TaskSet,
    bodies: &HashMap<(TaskId, VersionId), TaskBody>,
) -> std::result::Result<(), AdmissionError> {
    for t in candidate.tasks() {
        for (vi, _) in t.versions().iter().enumerate() {
            let key = (t.id(), VersionId::new(vi as u16));
            if !bodies.contains_key(&key) {
                return Err(AdmissionError::Invalid(Error::InvalidConfig(format!(
                    "no body registered for admitted task {} version v{vi}",
                    t.id()
                ))));
            }
        }
    }
    Ok(())
}

fn worker_main(
    rx: &Receiver<WorkerMsg>,
    done_tx: &Sender<Completion>,
    clock: &Arc<MonotonicClock>,
    me: WorkerId,
) {
    while let Ok(msg) = rx.recv() {
        match msg {
            WorkerMsg::Exit => break,
            WorkerMsg::Run { job, version, body } => {
                let started = clock.now();
                let ctx = JobCtx {
                    job,
                    version,
                    worker: me,
                };
                // Contain body panics on the worker: a panicking job is
                // reported as Failed instead of poisoning the thread (the
                // whole point of fault isolation — one bad tenant body
                // must not take a virtual CPU down with it). `TaskBody`
                // is not `UnwindSafe` because it is a shared closure, but
                // the runtime never observes its captured state after a
                // panic, so the assertion is sound.
                let outcome =
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&ctx))) {
                        Ok(()) => JobOutcome::Completed,
                        Err(_) => JobOutcome::Failed,
                    };
                let completed = clock.now();
                if done_tx
                    .send(Completion {
                        worker: me,
                        job,
                        version,
                        started,
                        completed,
                        outcome,
                    })
                    .is_err()
                {
                    break; // scheduler gone
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn scheduler_main(
    engine: &mut OnlineEngine,
    mut bodies: HashMap<(TaskId, VersionId), TaskBody>,
    worker_tx: &[Sender<WorkerMsg>],
    done_rx: &Receiver<Completion>,
    cmd_rx: &Receiver<Cmd>,
    clock: &Arc<MonotonicClock>,
    tick: yasmin_core::time::Duration,
    wait_mode: WaitMode,
) -> RuntimeReport {
    let epoch = std::time::Instant::now();
    let to_std = |t: Instant| epoch + std::time::Duration::from_nanos(t.as_nanos());

    let mut records: Vec<RtJobRecord> = Vec::new();
    let mut shutting_down = false;

    // One reusable sink for every engine interaction: the scheduler
    // thread's steady-state loop performs no allocation for actions.
    let mut sink = ActionSink::new();
    // Completions pending at one wake are retired together through the
    // engine's batch API: N workers finishing close together cost one
    // dispatch round, not N.
    let mut done_batch: Vec<(WorkerId, yasmin_core::ids::JobId)> =
        Vec::with_capacity(worker_tx.len().max(4));
    // Failed (panicked) jobs retire through the failure path, one by
    // one — rare by construction, so no batch API is warranted.
    let mut failed_batch: Vec<(WorkerId, yasmin_core::ids::JobId)> =
        Vec::with_capacity(worker_tx.len().max(4));
    // `bodies` is passed explicitly (not captured) because admission
    // grows the map between rounds.
    let dispatch = |sink: &ActionSink, bodies: &HashMap<(TaskId, VersionId), TaskBody>| {
        for &a in sink.as_slice() {
            if let Action::Dispatch {
                worker,
                job,
                version,
            } = a
            {
                let body = Arc::clone(&bodies[&(job.task, version)]);
                // Bounded mailbox: a full mailbox is a protocol bug since
                // the engine never double-books a worker.
                worker_tx[worker.index()]
                    .send(WorkerMsg::Run { job, version, body })
                    .expect("worker mailbox closed");
            }
            // Preempt/Boost cannot occur: preemption is disabled.
        }
    };

    engine
        .start_into(clock.now(), &mut sink)
        .expect("fresh engine starts");
    dispatch(&sink, &bodies);
    let mut next_tick = clock.now() + tick;

    loop {
        // Drain commands.
        while let Ok(cmd) = cmd_rx.try_recv() {
            match cmd {
                Cmd::Activate(task) => {
                    let now = clock.now();
                    sink.clear();
                    if engine.activate_into(task, now, &mut sink).is_ok() {
                        dispatch(&sink, &bodies);
                    }
                }
                Cmd::MsgHigh { dst, ceiling } => {
                    let now = clock.now();
                    sink.clear();
                    if engine
                        .on_high_posted_into(dst, ceiling, now, &mut sink)
                        .is_ok()
                    {
                        dispatch(&sink, &bodies);
                    }
                }
                Cmd::MsgDrained { dst } => {
                    let now = clock.now();
                    sink.clear();
                    if engine.on_high_drained_into(dst, now, &mut sink).is_ok() {
                        dispatch(&sink, &bodies);
                    }
                }
                Cmd::Admit {
                    merged,
                    bodies: tenant_bodies,
                    budget,
                    reply,
                } => {
                    // Control path: allocation here is fine, the tenant
                    // is not running yet (see module docs of
                    // `yasmin_sched::admission`).
                    let now = clock.now();
                    let tenant = TenantId::new(engine.tenant_count() as u32);
                    let server = reservation_for(tenant, budget, now);
                    sink.clear();
                    // Anchor the release train at the next tick edge:
                    // this thread dispatches on a fixed tick grid, and
                    // an off-grid phase would delay every dispatch of
                    // the tenant by up to one tick.
                    let res = engine.splice_taskset(merged, server).and_then(|t| {
                        bodies.extend(tenant_bodies);
                        engine.commit_tenant_anchored_into(t, next_tick, now, &mut sink)?;
                        Ok(t)
                    });
                    if res.is_ok() {
                        dispatch(&sink, &bodies);
                    }
                    let _ = reply.send(res);
                }
                Cmd::Retire { tenant, reply } => {
                    sink.clear();
                    let res = engine.retire_tenant_into(tenant, clock.now(), &mut sink);
                    if res.is_ok() {
                        dispatch(&sink, &bodies);
                    }
                    let _ = reply.send(res);
                }
                Cmd::Stop => engine.stop(),
                Cmd::Shutdown => shutting_down = true,
            }
        }
        if shutting_down && engine.is_idle() {
            break;
        }

        // Wait for a completion until the next tick; handle whichever
        // comes first.
        let now = clock.now();
        let timeout: std::time::Duration = if next_tick > now {
            (next_tick - now).into()
        } else {
            std::time::Duration::ZERO
        };
        match done_rx.recv_timeout(timeout) {
            Ok(first) => {
                done_batch.clear();
                failed_batch.clear();
                let mut last_completed = first.completed;
                let mut book = |c: Completion,
                                batch: &mut Vec<(WorkerId, _)>,
                                failed: &mut Vec<(WorkerId, _)>| {
                    match c.outcome {
                        JobOutcome::Completed => batch.push((c.worker, c.job.id)),
                        JobOutcome::Failed => failed.push((c.worker, c.job.id)),
                    }
                    records.push(RtJobRecord {
                        job: c.job,
                        version: c.version,
                        worker: c.worker,
                        started: c.started,
                        completed: c.completed,
                        outcome: c.outcome,
                    });
                };
                book(first, &mut done_batch, &mut failed_batch);
                // Coalesce the burst: every completion already pending
                // joins this batch and the single dispatch round below.
                while let Ok(c) = done_rx.try_recv() {
                    last_completed = last_completed.max(c.completed);
                    book(c, &mut done_batch, &mut failed_batch);
                }
                sink.clear();
                for &(worker, job) in &failed_batch {
                    engine
                        .on_job_failed_into(worker, job, last_completed, &mut sink)
                        .expect("failure protocol upheld");
                }
                if !done_batch.is_empty() {
                    engine
                        .on_jobs_completed_into(&done_batch, last_completed, &mut sink)
                        .expect("completion protocol upheld");
                }
                dispatch(&sink, &bodies);
            }
            Err(RecvTimeoutError::Timeout) => {
                // Tick edge: wait precisely (spin window), then release.
                let _ = wait_until(wait_mode, to_std(next_tick));
                let now = clock.now();
                sink.clear();
                engine.on_tick_into(now, &mut sink);
                dispatch(&sink, &bodies);
                while next_tick <= now {
                    next_tick += tick;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }

    RuntimeReport {
        records,
        engine_stats: engine.stats().clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use yasmin_core::graph::TaskSetBuilder;
    use yasmin_core::priority::PriorityPolicy;
    use yasmin_core::task::TaskSpec;
    use yasmin_core::time::Duration;
    use yasmin_core::version::VersionSpec;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn config(workers: usize) -> Config {
        Config::builder()
            .workers(workers)
            .priority(PriorityPolicy::EarliestDeadlineFirst)
            .preemption(false)
            .build()
            .unwrap()
    }

    #[test]
    fn periodic_task_fires_repeatedly() {
        let mut b = TaskSetBuilder::new();
        let t = b.task_decl(TaskSpec::periodic("tick", ms(5))).unwrap();
        let v = b
            .version_decl(t, VersionSpec::new("v", Duration::from_micros(100)))
            .unwrap();
        let ts = Arc::new(b.build().unwrap());
        let count = Arc::new(AtomicU32::new(0));
        let c2 = Arc::clone(&count);
        let rt = RuntimeBuilder::new(ts, config(1))
            .body(t, v, move |_| {
                c2.fetch_add(1, Ordering::SeqCst);
            })
            .build()
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(60));
        rt.stop();
        let report = rt.cleanup();
        let n = count.load(Ordering::SeqCst);
        // 60ms / 5ms = 12 expected; tolerate scheduling slack.
        assert!(n >= 6, "only {n} activations");
        assert_eq!(report.records.len() as u32, n);
        assert_eq!(report.engine_stats.completed as u32, n);
    }

    #[test]
    fn preemptive_config_rejected() {
        let mut b = TaskSetBuilder::new();
        let t = b.task_decl(TaskSpec::periodic("t", ms(5))).unwrap();
        let v = b
            .version_decl(t, VersionSpec::new("v", Duration::from_micros(10)))
            .unwrap();
        let ts = Arc::new(b.build().unwrap());
        let cfg = Config::builder().workers(1).build().unwrap(); // preemption on
        let r = RuntimeBuilder::new(ts, cfg).body(t, v, |_| {}).build();
        assert!(matches!(r, Err(Error::InvalidConfig(_))));
    }

    #[test]
    fn missing_body_rejected() {
        let mut b = TaskSetBuilder::new();
        let t = b.task_decl(TaskSpec::periodic("t", ms(5))).unwrap();
        b.version_decl(t, VersionSpec::new("v", Duration::from_micros(10)))
            .unwrap();
        let ts = Arc::new(b.build().unwrap());
        let r = RuntimeBuilder::new(ts, config(1)).build();
        assert!(matches!(r, Err(Error::InvalidConfig(_))));
    }

    #[test]
    fn dag_data_flows_through_spsc() {
        // fork -> join with a real typed channel captured in the bodies.
        let mut b = TaskSetBuilder::new();
        let fork = b.task_decl(TaskSpec::periodic("fork", ms(5))).unwrap();
        let join = b.task_decl(TaskSpec::graph_node("join")).unwrap();
        let vf = b
            .version_decl(fork, VersionSpec::new("f", Duration::from_micros(50)))
            .unwrap();
        let vj = b
            .version_decl(join, VersionSpec::new("j", Duration::from_micros(50)))
            .unwrap();
        let ch = b.channel_decl("c", 8, 8);
        b.channel_connect(fork, join, ch).unwrap();
        let ts = Arc::new(b.build().unwrap());

        let (tx, rx) = yasmin_sync::spsc::channel::<u64>(8);
        let tx = std::sync::Mutex::new(tx);
        let rx = std::sync::Mutex::new(rx);
        let sum = Arc::new(AtomicU32::new(0));
        let sum2 = Arc::clone(&sum);

        let rt = RuntimeBuilder::new(ts, config(2))
            .body(fork, vf, move |ctx| {
                let _ = tx.lock().unwrap().push(ctx.job.seq);
            })
            .body(join, vj, move |_| {
                if let Some(v) = rx.lock().unwrap().pop() {
                    sum2.fetch_add(v as u32 + 1, Ordering::SeqCst);
                }
            })
            .build()
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(40));
        rt.stop();
        let report = rt.cleanup();
        assert!(sum.load(Ordering::SeqCst) > 0, "join never saw data");
        // Join jobs inherit the graph deadline and release.
        let join_rec = report
            .records
            .iter()
            .find(|r| r.job.task == join)
            .expect("join ran");
        assert!(join_rec.job.graph_release <= join_rec.job.release);
    }

    #[test]
    fn aperiodic_activation_runs_once() {
        let mut b = TaskSetBuilder::new();
        let p = b.task_decl(TaskSpec::periodic("p", ms(5))).unwrap();
        let a = b.task_decl(TaskSpec::aperiodic("a")).unwrap();
        let vp = b
            .version_decl(p, VersionSpec::new("v", Duration::from_micros(10)))
            .unwrap();
        let va = b
            .version_decl(a, VersionSpec::new("v", Duration::from_micros(10)))
            .unwrap();
        let ts = Arc::new(b.build().unwrap());
        let hits = Arc::new(AtomicU32::new(0));
        let h2 = Arc::clone(&hits);
        let rt = RuntimeBuilder::new(ts, config(2))
            .body(p, vp, |_| {})
            .body(a, va, move |_| {
                h2.fetch_add(1, Ordering::SeqCst);
            })
            .build()
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(10));
        rt.activate(a).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        rt.stop();
        let _ = rt.cleanup();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn tenant_admission_on_the_single_owner_runtime() {
        let mut b = TaskSetBuilder::new();
        let base = b.task_decl(TaskSpec::periodic("base", ms(5))).unwrap();
        let vb = b
            .version_decl(base, VersionSpec::new("v", Duration::from_micros(50)))
            .unwrap();
        let ts = Arc::new(b.build().unwrap());
        let rt = RuntimeBuilder::new(ts, config(1))
            .body(base, vb, |_| {})
            .build()
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(15));

        // Candidate in its own id space: one periodic task.
        let mut c = TaskSetBuilder::new();
        let t = c.task_decl(TaskSpec::periodic("tenant", ms(10))).unwrap();
        let v = c
            .version_decl(t, VersionSpec::new("v", Duration::from_micros(50)))
            .unwrap();
        let cand = c.build().unwrap();
        let hits = Arc::new(AtomicU32::new(0));
        let h = Arc::clone(&hits);
        let mut bodies: HashMap<(TaskId, VersionId), TaskBody> = HashMap::new();
        bodies.insert(
            (t, v),
            Arc::new(move |_: &JobCtx| {
                h.fetch_add(1, Ordering::SeqCst);
            }),
        );
        let tenant = rt.admit(&cand, bodies, None).unwrap();
        assert_eq!(tenant.raw(), 1);
        std::thread::sleep(std::time::Duration::from_millis(35));
        let ran = hits.load(Ordering::SeqCst);
        assert!(ran >= 2, "admitted tenant only ran {ran} jobs");
        rt.retire(tenant).unwrap();
        assert!(matches!(rt.retire(tenant), Err(Error::TenantRetired(_))));
        std::thread::sleep(std::time::Duration::from_millis(25));
        let after = hits.load(Ordering::SeqCst);
        assert!(after <= ran + 1, "tenant kept running after retirement");
        rt.stop();
        let report = rt.cleanup();
        // The tenant's task is the merged suffix id T1; none of its jobs
        // missed a deadline.
        for r in report
            .records
            .iter()
            .filter(|r| r.job.task == TaskId::new(1))
        {
            assert!(!r.missed());
        }
    }

    #[test]
    fn oversubscribed_tenant_is_rejected() {
        let mut b = TaskSetBuilder::new();
        let base = b.task_decl(TaskSpec::periodic("base", ms(5))).unwrap();
        let vb = b.version_decl(base, VersionSpec::new("v", ms(3))).unwrap();
        let ts = Arc::new(b.build().unwrap());
        let rt = RuntimeBuilder::new(ts, config(1))
            .body(base, vb, |_| {})
            .build()
            .unwrap();
        // Base already uses 3/5 of the single worker; 3ms/5ms more
        // pushes utilisation to 1.2.
        let mut c = TaskSetBuilder::new();
        let t = c.task_decl(TaskSpec::periodic("greedy", ms(5))).unwrap();
        let v = c.version_decl(t, VersionSpec::new("v", ms(3))).unwrap();
        let cand = c.build().unwrap();
        let mut bodies: HashMap<(TaskId, VersionId), TaskBody> = HashMap::new();
        bodies.insert((t, v), Arc::new(|_: &JobCtx| {}));
        assert!(matches!(
            rt.admit(&cand, bodies, None),
            Err(AdmissionError::Rejected(_))
        ));
        rt.stop();
        let _ = rt.cleanup();
    }

    #[test]
    fn latency_is_sane() {
        // Wake-up latency on this host should be far below one period.
        let mut b = TaskSetBuilder::new();
        let t = b.task_decl(TaskSpec::periodic("t", ms(10))).unwrap();
        let v = b
            .version_decl(t, VersionSpec::new("v", Duration::from_micros(20)))
            .unwrap();
        let ts = Arc::new(b.build().unwrap());
        let rt = RuntimeBuilder::new(ts, config(1))
            .body(t, v, |_| {})
            .build()
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(80));
        rt.stop();
        let report = rt.cleanup();
        assert!(report.records.len() >= 3);
        for r in &report.records {
            assert!(
                r.start_latency() < ms(10),
                "latency {} exceeds the period",
                r.start_latency()
            );
            assert!(!r.missed(), "missed deadline in an idle host run");
        }
    }
}
