//! # yasmin-rt
//!
//! The real-thread POSIX runtime of YASMIN: a dedicated scheduler thread
//! driving the shared scheduling engine at the gcd tick, worker threads
//! ("virtual CPUs") pinned to cores executing registered task bodies, and
//! the OS plumbing the paper relies on (affinity, `mlockall`,
//! `SCHED_FIFO`).
//!
//! * [`runtime`] — [`runtime::RuntimeBuilder`] / [`runtime::Runtime`],
//!   mirroring the paper's `init`/`start`/`stop`/`cleanup` lifecycle;
//! * [`sharded`] — the per-core sharded runtime: one scheduler thread
//!   per worker, each owning an independent engine shard fed through
//!   the lock-free command mailbox (partitioned mapping);
//! * [`os`] — best-effort real-time OS setup (feature `os-rt`, on by
//!   default; degrades gracefully in unprivileged containers).

#![warn(missing_docs)]

pub mod os;
pub mod runtime;
pub mod sharded;

pub use runtime::{JobCtx, RtJobRecord, Runtime, RuntimeBuilder, RuntimeReport, TaskBody};
pub use sharded::{ShardedRuntime, ShardedRuntimeBuilder};
