//! # yasmin-rt
//!
//! The real-thread POSIX runtime of YASMIN: a dedicated scheduler thread
//! driving the shared scheduling engine at the gcd tick, worker threads
//! ("virtual CPUs") pinned to cores executing registered task bodies, and
//! the OS plumbing the paper relies on (affinity, `mlockall`,
//! `SCHED_FIFO`).
//!
//! * [`runtime`] — [`runtime::RuntimeBuilder`] / [`runtime::Runtime`],
//!   mirroring the paper's `init`/`start`/`stop`/`cleanup` lifecycle;
//! * [`os`] — best-effort real-time OS setup (feature `os-rt`, on by
//!   default; degrades gracefully in unprivileged containers).

#![warn(missing_docs)]

pub mod os;
pub mod runtime;

pub use runtime::{JobCtx, RtJobRecord, Runtime, RuntimeBuilder, RuntimeReport, TaskBody};
