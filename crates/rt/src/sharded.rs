//! The sharded real-thread runtime: **one scheduler thread per core**.
//!
//! The classic [`crate::runtime::Runtime`] owns one scheduler thread for
//! the whole engine. Under partitioned mapping the engine state splits
//! into independent per-worker shards ([`EngineShard`]), so this runtime
//! spawns a *pair* of threads per core — the worker, and the scheduler
//! thread owning that worker's shard — and connects them with lock-free
//! queues only:
//!
//! * **downstream** (scheduler → worker): a wait-free SPSC ring carrying
//!   dispatches;
//! * **upstream** (everyone → scheduler): the MPSC command mailbox of
//!   `yasmin_sync::mailbox` with one lane for the worker's completion
//!   hand-backs, one lane for control commands
//!   (activate/stop/shutdown), and **one lane per peer shard** carrying
//!   the cross-shard protocol — routed DAG activation tokens
//!   (`CrossActivate`) and the work-stealing handshake
//!   (`StealRequest` / `StolenBatch` / `StealDeny`) — with ticks
//!   generated locally by each scheduler thread at the shared gcd
//!   period.
//!
//! A wake that finds pending completions *and* a due tick coalesces
//! both into **one** engine round ([`EngineShard::advance_into`]): the
//! single dispatch round sees the freed workers and the fresh releases
//! together instead of paying two rounds.
//!
//! With [`ShardedRuntimeBuilder::work_stealing`] enabled, an idle shard
//! (empty queue, idle worker, drained mailbox) probes the advisory
//! [`LoadBoard`] for a victim — most loaded peer first, exact load
//! ties broken towards DAG-adjacent shards (wired from the task set's
//! cross-shard edges at startup) and recent donors — and sends it a
//! `StealRequest` carrying a batch size `k` derived from the load gap
//! ([`LoadBoard::steal_batch_size`], capped at
//! [`yasmin_sched::MAX_STEAL_BATCH`]). The victim detaches up to `k` of
//! its most urgent accelerator-free ready jobs in one exchange
//! ([`EngineShard::try_steal_batch`] /
//! [`EngineShard::release_stolen_batch`]) and grants them back as a
//! single `StolenBatch` ack, and the thief adopts the whole batch with
//! one dispatch round, running the jobs on its own worker — global
//! [`WorkerId`]s keep every record truthful about where a job actually
//! ran. Cross-shard DAG successors of any completion (stolen or local)
//! are drained from the shard outbox and routed to the owning peer's
//! lane.
//!
//! Scheduling decisions run through the same zero-allocation
//! [`ActionSink`] path as the single-owner runtime. Like that runtime,
//! shards schedule **non-preemptively at job boundaries**
//! (`preemption(false)`); preemptive sharded configurations are
//! exercised by the multi-threaded simulator driver (`yasmin_sim::par`).

use crate::runtime::{check_candidate_bodies, JobCtx, RtJobRecord, RuntimeReport, TaskBody};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use yasmin_core::config::{Config, WaitChoice};
use yasmin_core::error::{Error, Result};
use yasmin_core::graph::TaskSet;
use yasmin_core::ids::{JobId, TaskId, TenantId, VersionId, WorkerId};
use yasmin_core::priority::Priority;
use yasmin_core::time::{Clock, Instant, MonotonicClock};
use yasmin_sched::admission::{AdmissionControl, AdmissionError};
use yasmin_sched::msg::{MsgEvent, NotifyHandle, Receiver as MsgReceiver, Sender as MsgSender};
use yasmin_sched::server::TenantBudget;
use yasmin_sched::{
    validate_sharding, Action, ActionSink, EngineShard, EngineStats, Job, JobBatch, JobOutcome,
    RemoteActivation, ShardCmd, StealHint, MAX_STEAL_BATCH,
};
use yasmin_sync::mailbox::{mailbox, MailboxFull, MailboxReceiver, MailboxSender};
use yasmin_sync::spsc;
use yasmin_sync::steal::LoadBoard;
use yasmin_sync::wait::Backoff;

/// Lane indices of each shard's command mailbox; lane `LANE_PEER0 + p`
/// belongs to peer shard `p` (a shard's own peer lane stays unused, so
/// indexing needs no adjustment). Lane `LANE_PEER0 + n` is the *message
/// lane*: channel notify hooks post high-lane events there from
/// whichever thread sent or received (the sender handle is shared
/// behind a mutex, so the lane keeps one logical producer).
const LANE_WORKER: usize = 0;
const LANE_CONTROL: usize = 1;
const LANE_PEER0: usize = 2;

enum WorkerMsg {
    Run {
        job: Job,
        version: VersionId,
        body: TaskBody,
    },
    Exit,
}

/// Commands flowing into a shard's scheduler thread.
// The steal-grant variant embeds a fixed-size `JobBatch` (see
// `ShardCmd`): boxing it would allocate on the steal hot path, and the
// messages live in preallocated mailbox lanes anyway.
#[allow(clippy::large_enum_variant)]
enum ShardMsg {
    /// The shard's worker finished a job — normally or by panic (the
    /// `JobCompleted` / `JobFailed` commands).
    Done {
        job: Job,
        version: VersionId,
        started: Instant,
        completed: Instant,
        outcome: JobOutcome,
    },
    /// Explicit activation of a task owned by the shard.
    Activate(TaskId),
    /// A DAG token routed from a peer shard (cross-shard edge whose
    /// destination this shard owns).
    CrossActivate { edge: u32, graph_release: Instant },
    /// A high-priority message entered a channel lane. Lands first on
    /// the channel's *home* shard (the sending task's, so one channel's
    /// posts and drains share one FIFO route); a home shard that does
    /// not own `dst` forwards it over the per-peer lane to the owner,
    /// exactly like a [`ShardMsg::CrossActivate`] token.
    MsgHigh { dst: TaskId, ceiling: Priority },
    /// A high-lane message was consumed; routed like
    /// [`ShardMsg::MsgHigh`], releasing the boost when posts and drains
    /// balance.
    MsgDrained { dst: TaskId },
    /// An idle peer asks for up to `k` ready jobs; `k` is sized by the
    /// thief from the advertised load gap
    /// ([`LoadBoard::steal_batch_size`]).
    StealRequest { thief: WorkerId, k: u8 },
    /// A victim's grant: up to [`MAX_STEAL_BATCH`] detached jobs in one
    /// ack (a single steal is a batch of one); the thief adopts them
    /// all with one dispatch round.
    StolenBatch { jobs: JobBatch },
    /// A victim's refusal; the thief may re-probe.
    StealDeny,
    /// Phase one of a two-phase tenant admission (see
    /// [`ShardedRuntime::admit`]): splice the merged task set — its
    /// suffix is the new tenant — into this shard and register the
    /// tenant's bodies, with every new release left **disarmed**. The
    /// shard decrements `ack` when its splice is done; the admitting
    /// thread holds the commit until the counter hits zero so a
    /// cross-shard token for a new task can never reach a shard that has
    /// not yet heard of it.
    Admit {
        taskset: Arc<TaskSet>,
        bodies: Arc<HashMap<(TaskId, VersionId), TaskBody>>,
        budget: Option<TenantBudget>,
        at: Instant,
        ack: Arc<AtomicUsize>,
    },
    /// Phase two: arm the tenant's releases. Each shard anchors them at
    /// its **next local tick edge** (not the commit send instant): the
    /// shard dispatches on a fixed tick grid, so an off-grid release
    /// phase would delay every dispatch of the tenant by up to one tick
    /// — enough to sink a deadline equal to the period.
    Commit { tenant: TenantId },
    /// Quiesce a tenant: cull its ready jobs, disarm its releases, drop
    /// its pending tokens; in-flight jobs finish but fire no successors.
    Retire { tenant: TenantId, at: Instant },
    /// Stop releasing periodic jobs.
    Stop,
    /// Drain and exit (two-phase: see the drain protocol in
    /// [`shard_scheduler_main`]).
    Shutdown,
    /// Phase one of the loss-free shutdown drain: a quiesced shard
    /// barriers each peer lane with this marker. Peer lanes are FIFO,
    /// so by the time the receiver sees the flush, every token the
    /// sender routed before it has been received; the receiver answers
    /// with [`ShardMsg::DrainAck`].
    DrainFlush { from: usize },
    /// The ack completing a [`ShardMsg::DrainFlush`] barrier: the
    /// sending peer has observed everything routed to it before the
    /// flush (the peer's identity is implied by its lane).
    DrainAck,
}

/// Builder for the sharded runtime, mirroring
/// [`crate::runtime::RuntimeBuilder`].
pub struct ShardedRuntimeBuilder {
    taskset: Arc<TaskSet>,
    config: Config,
    bodies: HashMap<(TaskId, VersionId), TaskBody>,
    channels: Vec<NotifyHandle>,
    pin_offset: usize,
    lock_memory: bool,
    work_stealing: bool,
}

impl ShardedRuntimeBuilder {
    /// Starts building a sharded runtime for `taskset` under `config`.
    ///
    /// `config` must use partitioned mapping with
    /// `Config::sharded_dispatch(true)` and `preemption(false)`.
    #[must_use]
    pub fn new(taskset: Arc<TaskSet>, config: Config) -> Self {
        ShardedRuntimeBuilder {
            taskset,
            config,
            bodies: HashMap::new(),
            channels: Vec::new(),
            pin_offset: 0,
            lock_memory: false,
            work_stealing: false,
        }
    }

    /// Opens the typed endpoints of a declared channel and registers its
    /// notify hook, mirroring [`crate::runtime::RuntimeBuilder::channel`].
    /// Under sharding the channel's events land on its *home* shard (the
    /// sending task's); when the receiving task lives on another shard
    /// the home shard forwards them over the per-peer lanes, exactly
    /// like cross-shard DAG activation tokens.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownChannel`] / [`Error::ChannelNotConnected`] for a
    /// bad id, [`Error::InvalidConfig`] when `T` does not fit the
    /// spec's element size.
    pub fn channel<T: Send>(
        &mut self,
        id: yasmin_core::ids::ChannelId,
    ) -> Result<(MsgSender<T>, MsgReceiver<T>)> {
        let (tx, rx) = yasmin_sched::msg::channel(&self.taskset, id)?;
        self.channels.push(tx.notify_handle());
        Ok((tx, rx))
    }

    /// Registers a standalone channel (built with
    /// [`yasmin_sched::ChannelBuilder`], outside the task-set graph) so
    /// its high-lane traffic reaches the shard owning the receiver.
    #[must_use]
    pub fn register_channel(mut self, handle: NotifyHandle) -> Self {
        self.channels.push(handle);
        self
    }

    /// Enables work stealing: an idle shard probes the advisory load
    /// board and pulls the most urgent accelerator-free ready job off
    /// the most loaded peer, running it on its own worker. Off by
    /// default, which preserves strict task-to-worker placement.
    #[must_use]
    pub fn work_stealing(mut self, on: bool) -> Self {
        self.work_stealing = on;
        self
    }

    /// Registers the executable body of `(task, version)`.
    #[must_use]
    pub fn body(
        mut self,
        task: TaskId,
        version: VersionId,
        f: impl Fn(&JobCtx) + Send + Sync + 'static,
    ) -> Self {
        self.bodies.insert((task, version), Arc::new(f));
        self
    }

    /// Pins worker *w* — and its shard's scheduler thread — to core
    /// `offset + w`, best-effort.
    #[must_use]
    pub fn pin_cores_from(mut self, offset: usize) -> Self {
        self.pin_offset = offset;
        self
    }

    /// Calls `mlockall` at start (best-effort, §3.5).
    #[must_use]
    pub fn lock_memory(mut self) -> Self {
        self.lock_memory = true;
        self
    }

    /// Validates the sharding contract and spawns all threads; the
    /// schedule starts immediately.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidConfig`] when preemption is enabled, sharded
    ///   dispatch is not opted into, a version has no registered body,
    ///   or the task set violates the sharding contract
    ///   ([`yasmin_sched::validate_sharding`]);
    /// * engine construction errors (partition validation etc.).
    pub fn build(self) -> Result<ShardedRuntime> {
        if self.config.preemption() {
            return Err(Error::InvalidConfig(
                "the sharded thread runtime schedules non-preemptively at job \
                 boundaries; build the Config with .preemption(false)"
                    .into(),
            ));
        }
        for t in self.taskset.tasks() {
            for (vi, _) in t.versions().iter().enumerate() {
                let key = (t.id(), VersionId::new(vi as u16));
                if !self.bodies.contains_key(&key) {
                    return Err(Error::InvalidConfig(format!(
                        "no body registered for task {} version v{vi}",
                        t.id()
                    )));
                }
            }
        }
        let shards = EngineShard::build_all(&self.taskset, &self.config)?;
        if self.lock_memory {
            // Best-effort; containers commonly deny it.
            let _ = crate::os::lock_all_memory();
        }
        ShardedRuntime::spawn(self, shards)
    }
}

/// Tenant bookkeeping of a sharded runtime, held under one mutex so
/// concurrent admissions serialise: the current merged task set (grows
/// with each admission), the next tenant id, and the ids already
/// retired (validated here because shard threads cannot reply).
struct TenantState {
    current: Arc<TaskSet>,
    next_tenant: u32,
    retired: Vec<TenantId>,
}

/// The running sharded middleware: per-core scheduler threads + workers.
pub struct ShardedRuntime {
    state: Mutex<TenantState>,
    admission: AdmissionControl,
    clock: Arc<MonotonicClock>,
    /// One control sender per shard (lane [`LANE_CONTROL`]); behind a
    /// mutex because mailbox lanes are single-producer while this handle
    /// is `&self`-shared.
    control: Mutex<Vec<MailboxSender<ShardMsg>>>,
    schedulers: Vec<std::thread::JoinHandle<(Vec<RtJobRecord>, EngineStats)>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ShardedRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedRuntime")
            .field("shards", &self.schedulers.len())
            .finish_non_exhaustive()
    }
}

/// Sends `msg` into a mailbox lane, backing off while it is full.
fn send_with_backoff(tx: &mut MailboxSender<ShardMsg>, mut msg: ShardMsg) {
    let mut backoff = Backoff::new();
    loop {
        match tx.send(msg) {
            Ok(()) => return,
            Err(MailboxFull(v)) => {
                msg = v;
                backoff.snooze();
            }
        }
    }
}

impl ShardedRuntime {
    fn spawn(builder: ShardedRuntimeBuilder, shards: Vec<EngineShard>) -> Result<Self> {
        let clock = Arc::new(MonotonicClock::new());
        let cap = builder.config.max_pending_jobs();
        let waiting = builder.config.waiting();
        let n = shards.len();
        let tick = shards
            .first()
            .map(EngineShard::tick_period)
            .ok_or_else(|| {
                Error::InvalidConfig("sharded runtime needs at least one worker".into())
            })?;
        let admission = AdmissionControl::new(builder.config.clone(), tick);
        let board = Arc::new(LoadBoard::new(n));
        // Seed the victim-selection hints: shards joined by a
        // cross-shard DAG edge are marked adjacent, so on exact load
        // ties a thief prefers a victim whose jobs have successors (or
        // predecessors) on the thief's own shard — the stolen work's
        // tokens then travel a lane that already exists.
        for e in builder.taskset.edges() {
            let worker_of = |t: TaskId| {
                builder.taskset.tasks()[t.index()]
                    .spec()
                    .assigned_worker()
                    .map(|w| w.index())
            };
            if let (Some(a), Some(b)) = (worker_of(e.src), worker_of(e.dst)) {
                if a != b {
                    board.set_adjacent(a, b);
                }
            }
        }
        let drain_board: Arc<Vec<AtomicBool>> =
            Arc::new((0..n).map(|_| AtomicBool::new(false)).collect());
        let mut control = Vec::with_capacity(n);
        let mut schedulers = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);

        // One mailbox per shard: worker lane, control lane, one lane per
        // peer shard for the cross-shard protocol, and a final message
        // lane fed by the channel notify hooks. Peer senders are
        // regrouped so scheduler thread `s` owns, for every target `t`,
        // the sender feeding lane `LANE_PEER0 + s` of `t`'s mailbox.
        let mut worker_txs = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        let mut peer_lanes_by_target = Vec::with_capacity(n);
        let mut msg_txs = Vec::with_capacity(n);
        for _ in 0..n {
            let (mut lanes, mailbox_rx) = mailbox::<ShardMsg>(LANE_PEER0 + n + 1, cap.max(64));
            let mut peer_lanes = lanes.split_off(LANE_PEER0);
            let msg_tx = peer_lanes.pop().expect("message lane present");
            msg_txs.push(Arc::new(Mutex::new(msg_tx)));
            peer_lanes_by_target.push(peer_lanes);
            control.push(lanes.remove(LANE_CONTROL));
            worker_txs.push(lanes.remove(LANE_WORKER));
            receivers.push(mailbox_rx);
        }

        // Arm the channel notify hooks: each channel posts its events to
        // its *home* shard's message lane — the sending task's shard, so
        // one channel's posts and drains travel one FIFO route and can
        // never reorder. A home shard that does not own the receiver
        // forwards over the per-peer lanes (see `ShardMsg::MsgHigh`).
        for handle in &builder.channels {
            if handle.ceiling().is_none() {
                continue;
            }
            let owner_of = |t: TaskId| -> Result<usize> {
                builder
                    .taskset
                    .tasks()
                    .get(t.index())
                    .ok_or(Error::UnknownTask(t))?
                    .spec()
                    .assigned_worker()
                    .ok_or(Error::MissingPartition(t))
                    .map(|w| w.index())
            };
            let home = match builder
                .taskset
                .edges()
                .iter()
                .find(|e| Some(e.channel) == handle.channel())
            {
                Some(e) => owner_of(e.src)?,
                None => owner_of(handle.dst())?,
            };
            let tx = Arc::clone(&msg_txs[home]);
            let _ = handle.set_notify(Arc::new(move |ev| {
                let msg = match ev {
                    MsgEvent::HighPosted { dst, ceiling } => ShardMsg::MsgHigh { dst, ceiling },
                    MsgEvent::HighDrained { dst } => ShardMsg::MsgDrained { dst },
                };
                let mut tx = tx.lock().expect("message lane mutex poisoned");
                send_with_backoff(&mut tx, msg);
            }));
        }
        // Transpose: peer_txs[source][target], a shard never sends to
        // itself.
        let mut peer_txs: Vec<Vec<Option<MailboxSender<ShardMsg>>>> =
            (0..n).map(|_| Vec::with_capacity(n)).collect();
        for (target, lanes) in peer_lanes_by_target.into_iter().enumerate() {
            for (source, tx) in lanes.into_iter().enumerate() {
                peer_txs[source].push((source != target).then_some(tx));
            }
        }

        for ((shard, mailbox_rx), (worker_tx, peers)) in shards
            .into_iter()
            .zip(receivers)
            .zip(worker_txs.into_iter().zip(peer_txs))
        {
            let w = shard.worker();
            let core = builder.pin_offset + w.index();
            let (to_worker, from_sched) = spsc::channel::<WorkerMsg>(cap);

            let worker_clock = Arc::clone(&clock);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("yasmin-worker-{w}"))
                    .spawn(move || {
                        let _ = crate::os::pin_current_thread(core);
                        shard_worker_main(from_sched, worker_tx, &worker_clock, w, waiting);
                    })
                    .map_err(|e| Error::Os(format!("spawning worker {w}: {e}")))?,
            );

            let shard_bodies = builder.bodies.clone();
            let sched_clock = Arc::clone(&clock);
            let links = PeerLinks {
                txs: peers,
                pending: (0..n).map(|_| std::collections::VecDeque::new()).collect(),
                board: Arc::clone(&board),
                stealing: builder.work_stealing && n > 1,
                drained: Arc::clone(&drain_board),
            };
            schedulers.push(
                std::thread::Builder::new()
                    .name(format!("yasmin-shard-sched-{w}"))
                    .spawn(move || {
                        let _ = crate::os::pin_current_thread(core);
                        shard_scheduler_main(
                            shard,
                            shard_bodies,
                            to_worker,
                            mailbox_rx,
                            &sched_clock,
                            waiting,
                            links,
                        )
                    })
                    .map_err(|e| Error::Os(format!("spawning shard scheduler {w}: {e}")))?,
            );
        }

        Ok(ShardedRuntime {
            state: Mutex::new(TenantState {
                current: builder.taskset,
                next_tenant: 1,
                retired: Vec::new(),
            }),
            admission,
            clock,
            control: Mutex::new(control),
            schedulers,
            workers,
        })
    }

    /// Activates an aperiodic or sporadic task on its owning shard (the
    /// paper's `yas_task_activate`).
    ///
    /// # Errors
    ///
    /// [`Error::UnknownTask`] / [`Error::MissingPartition`] when the
    /// task does not exist or has no worker assignment.
    pub fn activate(&self, task: TaskId) -> Result<()> {
        let w = {
            let state = self.state.lock().expect("tenant state mutex poisoned");
            state
                .current
                .task(task)?
                .spec()
                .assigned_worker()
                .ok_or(Error::MissingPartition(task))?
        };
        let mut control = self.control.lock().expect("control mutex poisoned");
        send_with_backoff(&mut control[w.index()], ShardMsg::Activate(task));
        Ok(())
    }

    /// Admits a new tenant into the **running** sharded schedule.
    ///
    /// `candidate` is the tenant's task set declared in its own id
    /// space; `bodies` maps its `(task, version)` pairs (candidate-local
    /// ids) to executable bodies; `budget`, when given, caps the
    /// tenant's share with a per-shard replica of its reservation server
    /// — under partitioned scheduling the budget bounds the tenant **per
    /// worker** (a tenant spanning `k` shards may consume up to `k ×`
    /// capacity per period).
    ///
    /// The schedulability check ([`AdmissionControl::evaluate`] plus the
    /// sharding contract, [`validate_sharding`]) runs on the **caller's**
    /// thread — the paper's non-real-time admission path. An accepted
    /// tenant is then spliced in **two phases** over the control lanes:
    /// every shard first adopts the merged set with the new releases
    /// disarmed and acknowledges, and only once all shards have
    /// acknowledged is the commit broadcast that arms the releases. The
    /// barrier guarantees a cross-shard DAG token of the new tenant can
    /// never arrive at a shard that has not yet spliced. Existing
    /// tenants' scheduling is untouched either way.
    ///
    /// Returns the assigned [`TenantId`] (use it with
    /// [`ShardedRuntime::retire`]); the tenant's task ids are its
    /// candidate ids offset by the number of tasks admitted before it.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::Rejected`] names the violated analysis bound;
    /// [`AdmissionError::Invalid`] covers malformed requests — missing
    /// bodies, partition or sharding-contract violations (e.g. an
    /// accelerator shared with another shard), a period off the running
    /// tick, a degenerate budget.
    pub fn admit(
        &self,
        candidate: &TaskSet,
        bodies: HashMap<(TaskId, VersionId), TaskBody>,
        budget: Option<TenantBudget>,
    ) -> std::result::Result<TenantId, AdmissionError> {
        let mut state = self.state.lock().expect("tenant state mutex poisoned");
        check_candidate_bodies(candidate, &bodies)?;
        let merged = self
            .admission
            .evaluate(&state.current, candidate, budget.as_ref())?;
        validate_sharding(&merged, self.admission.config()).map_err(AdmissionError::Invalid)?;
        let tenant = TenantId::new(state.next_tenant);
        let offset = state.current.len() as u32;
        let remapped: Arc<HashMap<(TaskId, VersionId), TaskBody>> = Arc::new(
            bodies
                .into_iter()
                .map(|((t, v), b)| ((TaskId::new(offset + t.raw()), v), b))
                .collect(),
        );

        // Phase 1: broadcast the splice and wait for every shard to
        // acknowledge it.
        let mut control = self.control.lock().expect("control mutex poisoned");
        let ack = Arc::new(AtomicUsize::new(control.len()));
        let at = self.clock.now();
        for tx in control.iter_mut() {
            send_with_backoff(
                tx,
                ShardMsg::Admit {
                    taskset: Arc::clone(&merged),
                    bodies: Arc::clone(&remapped),
                    budget,
                    at,
                    ack: Arc::clone(&ack),
                },
            );
        }
        let mut backoff = Backoff::new();
        while ack.load(Ordering::Acquire) != 0 {
            backoff.snooze();
        }

        // Phase 2: every shard knows the tenant — arm its releases
        // (each shard anchors them at its next local tick edge).
        for tx in control.iter_mut() {
            send_with_backoff(tx, ShardMsg::Commit { tenant });
        }
        drop(control);
        state.current = merged;
        state.next_tenant += 1;
        Ok(tenant)
    }

    /// Retires an admitted tenant on every shard: its future releases
    /// stop, its ready jobs are culled, its in-flight jobs finish
    /// without firing successors, and racing cross-shard tokens are
    /// dropped silently. Other tenants are untouched.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownTenant`] / [`Error::TenantRetired`] for ids never
    /// admitted or already retired; [`Error::InvalidConfig`] for tenant
    /// 0 (the build-time set — use [`ShardedRuntime::stop`]).
    pub fn retire(&self, tenant: TenantId) -> Result<()> {
        let mut state = self.state.lock().expect("tenant state mutex poisoned");
        if tenant.raw() == 0 {
            return Err(Error::InvalidConfig(
                "tenant 0 is the built-in task set; stop the schedule to end it".into(),
            ));
        }
        if tenant.raw() >= state.next_tenant {
            return Err(Error::UnknownTenant(tenant.raw()));
        }
        if state.retired.contains(&tenant) {
            return Err(Error::TenantRetired(tenant.raw()));
        }
        let at = self.clock.now();
        {
            let mut control = self.control.lock().expect("control mutex poisoned");
            for tx in control.iter_mut() {
                send_with_backoff(tx, ShardMsg::Retire { tenant, at });
            }
        }
        state.retired.push(tenant);
        Ok(())
    }

    /// Stops releasing new periodic jobs on every shard; in-flight jobs
    /// drain (the paper's `yas_stop`).
    pub fn stop(&self) {
        let mut control = self.control.lock().expect("control mutex poisoned");
        for tx in control.iter_mut() {
            send_with_backoff(tx, ShardMsg::Stop);
        }
    }

    /// Drains every shard, joins all threads and returns the merged run
    /// report (the paper's `yas_cleanup`). Records are ordered by
    /// completion time across shards.
    ///
    /// # Panics
    ///
    /// Panics if a runtime thread panicked.
    #[must_use]
    pub fn cleanup(mut self) -> RuntimeReport {
        {
            let mut control = self.control.lock().expect("control mutex poisoned");
            for tx in control.iter_mut() {
                send_with_backoff(tx, ShardMsg::Shutdown);
            }
        }
        let mut records = Vec::new();
        let mut engine_stats = EngineStats::default();
        for s in self.schedulers.drain(..) {
            let (recs, stats) = s.join().expect("shard scheduler thread panicked");
            records.extend(recs);
            engine_stats.merge(&stats);
        }
        for w in self.workers.drain(..) {
            w.join().expect("worker thread panicked");
        }
        records.sort_by_key(|r| (r.completed, r.job.task, r.job.seq));
        RuntimeReport {
            records,
            engine_stats,
        }
    }
}

fn shard_worker_main(
    mut rx: spsc::Consumer<WorkerMsg>,
    mut done_tx: MailboxSender<ShardMsg>,
    clock: &Arc<MonotonicClock>,
    me: WorkerId,
    waiting: WaitChoice,
) {
    let mut backoff = Backoff::new();
    let mut idle_polls = 0u32;
    loop {
        match rx.pop() {
            Some(WorkerMsg::Exit) => break,
            Some(WorkerMsg::Run { job, version, body }) => {
                backoff.reset();
                idle_polls = 0;
                let started = clock.now();
                let ctx = JobCtx {
                    job,
                    version,
                    worker: me,
                };
                // Contain body panics: a panicking job is handed back as
                // Failed instead of killing the worker thread and with it
                // the whole shard. `TaskBody` is a shared closure and not
                // `UnwindSafe`, but its captured state is never observed
                // by the runtime after a panic, so the assertion is sound.
                let outcome =
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&ctx))) {
                        Ok(()) => JobOutcome::Completed,
                        Err(_) => JobOutcome::Failed,
                    };
                let completed = clock.now();
                send_with_backoff(
                    &mut done_tx,
                    ShardMsg::Done {
                        job,
                        version,
                        started,
                        completed,
                        outcome,
                    },
                );
            }
            None => {
                idle_polls += 1;
                // Under the sleep strategy an idle worker naps in short
                // slices instead of burning its core.
                if waiting == WaitChoice::Sleep && idle_polls > 64 {
                    std::thread::sleep(std::time::Duration::from_micros(100));
                } else {
                    backoff.snooze();
                }
            }
        }
    }
}

/// A scheduler thread's links to its peers: one mailbox sender per
/// target shard (its own slot is `None`), the advisory load board, and
/// whether stealing is enabled.
///
/// Peer sends never block: a full lane spills into a local per-target
/// FIFO that [`PeerLinks::flush`] retries every wake. Blocking here
/// would be a deadlock hazard — two shards spinning on each other's
/// full lanes while neither drains its own mailbox, or one shard
/// wedged forever on a peer that already exited at shutdown.
struct PeerLinks {
    txs: Vec<Option<MailboxSender<ShardMsg>>>,
    /// Per-target overflow, preserving lane FIFO order.
    pending: Vec<std::collections::VecDeque<ShardMsg>>,
    board: Arc<LoadBoard>,
    stealing: bool,
    /// The shared drain board of the two-phase shutdown: `drained[s]`
    /// is raised by shard `s` once it is quiet during shutdown and
    /// cleared by `s` when late work arrives. A shard exits only at
    /// global quiescence — every flag raised *and* its own mailbox and
    /// spill backlog empty — so no in-flight message is ever dropped.
    drained: Arc<Vec<AtomicBool>>,
}

impl PeerLinks {
    fn send(&mut self, target: usize, msg: ShardMsg) {
        let tx = self.txs[target]
            .as_mut()
            .expect("peer links never target the sending shard");
        if self.pending[target].is_empty() {
            if let Err(MailboxFull(v)) = tx.send(msg) {
                self.pending[target].push_back(v);
            }
        } else {
            // Keep lane order: everything queues behind the backlog.
            self.pending[target].push_back(msg);
        }
    }

    /// Retries the spilled backlog, stopping per target at the first
    /// still-full lane.
    fn flush(&mut self) {
        for (t, q) in self.pending.iter_mut().enumerate() {
            while let Some(msg) = q.pop_front() {
                let tx = self.txs[t].as_mut().expect("backlog only for peers");
                if let Err(MailboxFull(v)) = tx.send(msg) {
                    q.push_front(v);
                    break;
                }
            }
        }
    }

    fn pending_empty(&self) -> bool {
        self.pending
            .iter()
            .all(std::collections::VecDeque::is_empty)
    }

    /// Raises this shard's drained flag. `Release` pairs with the
    /// `Acquire` in [`PeerLinks::all_drained`]: everything this shard
    /// sent before raising the flag (tokens already landed in peer
    /// mailboxes) is visible to a peer that observes the flag before it
    /// checks its own mailbox.
    fn set_drained(&self, me: usize) {
        self.drained[me].store(true, Ordering::Release);
    }

    /// Clears this shard's drained flag — late work arrived after the
    /// shard advertised quiescence.
    fn clear_drained(&self, me: usize) {
        self.drained[me].store(false, Ordering::Release);
    }

    /// `true` when every shard has advertised quiescence.
    fn all_drained(&self) -> bool {
        self.drained.iter().all(|d| d.load(Ordering::Acquire))
    }
}

#[allow(clippy::too_many_lines)]
fn shard_scheduler_main(
    mut shard: EngineShard,
    mut bodies: HashMap<(TaskId, VersionId), TaskBody>,
    mut to_worker: spsc::Producer<WorkerMsg>,
    mut rx: MailboxReceiver<ShardMsg>,
    clock: &Arc<MonotonicClock>,
    waiting: WaitChoice,
    mut peers: PeerLinks,
) -> (Vec<RtJobRecord>, EngineStats) {
    let worker = shard.worker();
    let me = worker.index();
    let tick = shard.tick_period();
    let mut records: Vec<RtJobRecord> = Vec::new();
    let mut shutting_down = false;
    // The victim worker index of the one in-flight steal request, if
    // any — cleared by its grant/refusal, or when the victim's lane
    // closes without answering (the victim exited).
    let mut pending_steal: Option<usize> = None;
    // Victim-side batch-steal scratch, reused across grants so the
    // steal path stays allocation-free after the first exchange.
    let mut steal_hints: Vec<StealHint> = Vec::with_capacity(MAX_STEAL_BATCH);
    let mut steal_batch = JobBatch::new();
    // Two-phase drain state: whether this shard has barriered its peer
    // lanes with `DrainFlush`, and how many peers have acked.
    let mut flush_sent = false;
    let mut drain_acks = 0usize;
    let peer_count = peers.txs.len().saturating_sub(1);

    // One reusable sink: the steady-state loop allocates nothing for
    // actions. Dispatches go straight into the worker's SPSC ring.
    let mut sink = ActionSink::new();
    // Completions found pending in one mailbox drain, retired through
    // the engine's batch API (or folded into a due tick) so the whole
    // burst pays a single dispatch round.
    let mut done_batch: Vec<(WorkerId, JobId)> = Vec::with_capacity(8);
    // Cross-shard DAG tokens drained from the shard outbox, reused.
    let mut outbox: Vec<RemoteActivation> = Vec::with_capacity(8);
    let mut last_done = Instant::ZERO;
    // `bodies` is passed explicitly (not captured) because admission
    // grows the map between rounds.
    let dispatch = |sink: &ActionSink,
                    to_worker: &mut spsc::Producer<WorkerMsg>,
                    bodies: &HashMap<(TaskId, VersionId), TaskBody>| {
        for &a in sink.as_slice() {
            if let Action::Dispatch { job, version, .. } = a {
                let body = Arc::clone(&bodies[&(job.task, version)]);
                let mut msg = WorkerMsg::Run { job, version, body };
                let mut backoff = Backoff::new();
                // The ring is sized for max_pending_jobs, so a full ring
                // only means the worker is momentarily behind.
                while let Err(yasmin_sync::spsc::Full(v)) = to_worker.push(msg) {
                    msg = v;
                    backoff.snooze();
                }
            }
            // Boost actions are priority bookkeeping only; preemption is
            // disabled, so Preempt cannot occur.
        }
    };

    // The advertised load is the *stealable* load: zero whenever the
    // steal probe would yield no hint (empty queue, or a top job that
    // must not migrate). Advertising raw ready counts would invite a
    // persistent request/deny ping-pong against a shard whose queue
    // holds only unstealable work.
    let stealable_load =
        |shard: &EngineShard| -> usize { shard.try_steal().map_or(0, |_| shard.ready_len()) };

    // Everything an engine round leaves behind: dispatches go to the
    // worker ring, cross-shard tokens route to their owning peers, and
    // — when anyone actually probes — the advisory load is republished
    // (with stealing off, the probe and the store would be pure
    // overhead on the benchmarked dispatch path).
    macro_rules! settle_round {
        ($sink:expr) => {{
            dispatch($sink, &mut to_worker, &bodies);
            shard.drain_outbox_into(&mut outbox);
            for ra in outbox.drain(..) {
                peers.send(
                    ra.worker.index(),
                    ShardMsg::CrossActivate {
                        edge: ra.edge,
                        graph_release: ra.graph_release,
                    },
                );
            }
            if peers.stealing {
                peers.board.publish(me, stealable_load(&shard));
            }
        }};
    }

    shard
        .start_into(clock.now(), &mut sink)
        .expect("fresh shard starts");
    settle_round!(&sink);
    let mut next_tick = clock.now() + tick;

    loop {
        // Retry any peer sends that found a full lane earlier — before
        // draining our own mailbox, so two busy shards always make
        // mutual progress.
        peers.flush();
        // Drain the mailbox (completions, control, peer protocol) on
        // the zero-alloc path. Pending completions coalesce; any other
        // command first flushes them, so command effects stay ordered
        // as received. Completions still pending when the drain ends
        // are folded into the tick round below if one is due.
        let mut drained_any = false;
        debug_assert!(done_batch.is_empty());
        loop {
            let msg = rx.try_recv();
            if msg.is_some() {
                drained_any = true;
            }
            let flush =
                !done_batch.is_empty() && !matches!(msg, Some(ShardMsg::Done { .. }) | None);
            if flush {
                sink.clear();
                shard
                    .on_jobs_completed_into(&done_batch, last_done, &mut sink)
                    .expect("completion protocol upheld");
                done_batch.clear();
                settle_round!(&sink);
            }
            let Some(msg) = msg else { break };
            // Late work arriving after this shard advertised quiescence
            // revokes the advertisement before any effect of the work
            // (dispatches, routed tokens) becomes visible to peers. The
            // drain-protocol markers themselves are not work.
            if shutting_down && !matches!(msg, ShardMsg::DrainFlush { .. } | ShardMsg::DrainAck) {
                peers.clear_drained(me);
            }
            match msg {
                ShardMsg::Done {
                    job,
                    version,
                    started,
                    completed,
                    outcome,
                } => {
                    // Max, not overwrite: the mailbox merges lanes, and
                    // a batch's dispatch round must not run at a
                    // timestamp earlier than a completion it retires.
                    last_done = last_done.max(completed);
                    records.push(RtJobRecord {
                        job,
                        version,
                        worker,
                        started,
                        completed,
                        outcome,
                    });
                    match outcome {
                        JobOutcome::Completed => done_batch.push((worker, job.id)),
                        JobOutcome::Failed => {
                            // Failures are rare by construction: flush
                            // the completed batch so retirement stays
                            // ordered, then retire the failure alone
                            // through the failure path (successors are
                            // policy-gated there).
                            sink.clear();
                            if !done_batch.is_empty() {
                                shard
                                    .on_jobs_completed_into(&done_batch, last_done, &mut sink)
                                    .expect("completion protocol upheld");
                                done_batch.clear();
                            }
                            shard
                                .on_job_failed_into(worker, job.id, completed, &mut sink)
                                .expect("failure protocol upheld");
                            settle_round!(&sink);
                        }
                    }
                }
                ShardMsg::Activate(task) => {
                    sink.clear();
                    if shard.activate_into(task, clock.now(), &mut sink).is_ok() {
                        settle_round!(&sink);
                    }
                }
                ShardMsg::CrossActivate {
                    edge,
                    graph_release,
                } => {
                    sink.clear();
                    shard
                        .on_remote_token(edge, graph_release, clock.now(), &mut sink)
                        .expect("cross-shard token routed to the owning shard");
                    settle_round!(&sink);
                }
                ShardMsg::MsgHigh { dst, ceiling } => {
                    let owner = shard
                        .taskset()
                        .tasks()
                        .get(dst.index())
                        .and_then(|t| t.spec().assigned_worker());
                    match owner {
                        Some(o) if o.index() == me => {
                            sink.clear();
                            let cmd = ShardCmd::MsgHigh {
                                dst,
                                ceiling,
                                at: clock.now(),
                            };
                            if shard.process_into(cmd, &mut sink).is_ok() {
                                settle_round!(&sink);
                            }
                        }
                        // Not ours: ride the per-peer lane to the owner,
                        // like a cross-shard activation token.
                        Some(o) => peers.send(o.index(), ShardMsg::MsgHigh { dst, ceiling }),
                        None => {}
                    }
                }
                ShardMsg::MsgDrained { dst } => {
                    let owner = shard
                        .taskset()
                        .tasks()
                        .get(dst.index())
                        .and_then(|t| t.spec().assigned_worker());
                    match owner {
                        Some(o) if o.index() == me => {
                            sink.clear();
                            let cmd = ShardCmd::MsgDrained {
                                dst,
                                at: clock.now(),
                            };
                            if shard.process_into(cmd, &mut sink).is_ok() {
                                settle_round!(&sink);
                            }
                        }
                        Some(o) => peers.send(o.index(), ShardMsg::MsgDrained { dst }),
                        None => {}
                    }
                }
                ShardMsg::StealRequest { thief, k } => {
                    // Answer authoritatively: detach up to `k` of the
                    // most urgent accelerator-free ready jobs in one
                    // exchange, or refuse. Scratch buffers are retained
                    // across rounds — the grant path allocates nothing.
                    steal_hints.clear();
                    steal_batch.clear();
                    shard.try_steal_batch(k as usize, &mut steal_hints);
                    let granted = shard.release_stolen_batch(&steal_hints, &mut steal_batch);
                    let reply = if granted == 0 {
                        ShardMsg::StealDeny
                    } else {
                        // Record the donation so future load ties break
                        // towards this shard — recent donors tend to
                        // stay the imbalanced ones.
                        peers.board.record_donation(me);
                        ShardMsg::StolenBatch { jobs: steal_batch }
                    };
                    peers.send(thief.index(), reply);
                    if peers.stealing {
                        peers.board.publish(me, stealable_load(&shard));
                    }
                }
                ShardMsg::StolenBatch { jobs } => {
                    pending_steal = None;
                    sink.clear();
                    shard
                        .adopt_stolen_batch(jobs.as_slice(), clock.now(), &mut sink)
                        .expect("stolen batch adoptable by the requesting shard");
                    settle_round!(&sink);
                }
                ShardMsg::StealDeny => pending_steal = None,
                ShardMsg::Admit {
                    taskset,
                    bodies: tenant_bodies,
                    budget,
                    at,
                    ack,
                } => {
                    // Control path: allocation here is fine, the tenant
                    // is not running yet (see module docs of
                    // `yasmin_sched::admission`).
                    for (k, b) in tenant_bodies.iter() {
                        bodies.insert(*k, Arc::clone(b));
                    }
                    shard
                        .admit_tasks(taskset, budget, at)
                        .expect("admission validated by the admitting thread");
                    ack.fetch_sub(1, Ordering::AcqRel);
                }
                ShardMsg::Commit { tenant } => {
                    sink.clear();
                    // A commit racing a `stop()` is refused by the
                    // engine (`ScheduleNotRunning`) — the schedule is
                    // ending anyway, so the tenant simply never starts.
                    if shard
                        .commit_tenant_anchored_into(tenant, next_tick, clock.now(), &mut sink)
                        .is_ok()
                    {
                        settle_round!(&sink);
                    }
                }
                ShardMsg::Retire { tenant, at } => {
                    sink.clear();
                    shard
                        .retire_tenant_into(tenant, at, &mut sink)
                        .expect("retirement validated by the retiring thread");
                    settle_round!(&sink);
                }
                ShardMsg::Stop => shard.stop(),
                ShardMsg::Shutdown => {
                    // Shutdown implies stop: the drain below terminates
                    // only once releases cease.
                    shard.stop();
                    shutting_down = true;
                }
                ShardMsg::DrainFlush { from } => {
                    // The flush rode the FIFO peer lane behind every
                    // token `from` routed here before quiescing; acking
                    // it proves all of them have been received.
                    peers.send(from, ShardMsg::DrainAck);
                }
                ShardMsg::DrainAck => drain_acks += 1,
            }
        }

        // A steal request outstanding towards a victim that exited
        // unanswered (its lane closed and drained) counts as a refusal.
        if let Some(v) = pending_steal {
            let lane = LANE_PEER0 + v;
            if !rx.lane_open(lane) && rx.peek_lane(lane).is_none() {
                pending_steal = None;
            }
        }
        // Two-phase loss-free drain (closes ROADMAP parity gap (2), the
        // shutdown-loss window of the old bounded flush). Phase one: a
        // shard that has gone locally quiet — idle worker, no steal in
        // flight, spill backlog flushed — barriers every peer lane with
        // `DrainFlush` and waits for all acks; the FIFO lanes turn each
        // ack into a proof that the peer received everything routed to
        // it before the flush. Phase two: with all acks in and its own
        // mailbox empty, the shard raises its flag on the shared drain
        // board. Exit happens only at global quiescence — every shard
        // drained *and* this shard's mailbox and backlog still empty. A
        // late token un-drains its receiver before any effect of the
        // work is visible, and an undelivered message always shows up
        // either in its sender's backlog (sender not drained) or its
        // receiver's mailbox (receiver re-checks before exiting), so no
        // message can be lost.
        if shutting_down && shard.is_idle() && pending_steal.is_none() && peers.pending_empty() {
            if !flush_sent {
                for p in 0..peers.txs.len() {
                    if p != me {
                        peers.send(p, ShardMsg::DrainFlush { from: me });
                    }
                }
                flush_sent = true;
            }
            if drain_acks >= peer_count && rx.is_empty() {
                peers.set_drained(me);
                if peers.all_drained() && rx.is_empty() && peers.pending_empty() {
                    break;
                }
            }
        }

        // Tick edge, generated locally by this shard's owner. A due
        // tick folds the still-pending completion batch into the same
        // engine round: one dispatch round sees the freed worker and
        // the fresh releases together.
        let now = clock.now();
        if now >= next_tick {
            sink.clear();
            shard
                .advance_into(&done_batch, now, &mut sink)
                .expect("completion protocol upheld");
            done_batch.clear();
            settle_round!(&sink);
            // Age the donation history once per tick, from one shard
            // only (every shard halving it would decay n times faster
            // than intended). "Recent donor" then means "donated within
            // the last few ticks".
            if peers.stealing && me == 0 {
                peers.board.decay_donations();
            }
            while next_tick <= now {
                next_tick += tick;
            }
            continue;
        }
        if !done_batch.is_empty() {
            sink.clear();
            shard
                .on_jobs_completed_into(&done_batch, last_done, &mut sink)
                .expect("completion protocol upheld");
            done_batch.clear();
            settle_round!(&sink);
        }

        // Fully idle (empty queue, idle worker, drained mailbox): probe
        // the load board and ask the most loaded peer for work.
        if peers.stealing
            && !shutting_down
            && pending_steal.is_none()
            && shard.is_idle()
            && rx.is_empty()
        {
            if let Some(victim) = peers.board.pick_victim(me) {
                // Size the request to half the advertised load gap: a
                // thief this idle asks for more from a deeply loaded
                // victim, and never for more than the batch cap.
                let k = peers
                    .board
                    .steal_batch_size(victim, shard.ready_len(), MAX_STEAL_BATCH);
                peers.send(
                    victim,
                    ShardMsg::StealRequest {
                        thief: worker,
                        k: k as u8,
                    },
                );
                pending_steal = Some(victim);
                continue;
            }
        }

        if !drained_any {
            // Idle until the next tick or the next mailbox command; the
            // sleep strategy naps in short slices so completions are
            // still picked up promptly.
            match waiting {
                WaitChoice::Sleep => {
                    let remaining: std::time::Duration = (next_tick - now).into();
                    std::thread::sleep(remaining.min(std::time::Duration::from_micros(200)));
                }
                WaitChoice::Spin => std::hint::spin_loop(),
            }
        }
    }

    // Global quiescence reached: every shard is drained and this
    // shard's mailbox and spill backlog are empty. Nothing can be in
    // flight — an undelivered message would have kept either its
    // sender's backlog non-empty (sender not drained) or this mailbox
    // non-empty — so exiting here loses no routed token, steal grant
    // or completion. (The old exit bounded its backlog flush and
    // documented a shutdown-loss window; the drain barrier replaces
    // it.)
    debug_assert!(
        peers.pending_empty(),
        "drained shard with spilled peer messages"
    );
    debug_assert!(rx.is_empty(), "drained shard with a non-empty mailbox");
    peers.board.publish(me, 0);

    // Release the worker.
    let mut msg = WorkerMsg::Exit;
    let mut backoff = Backoff::new();
    while let Err(yasmin_sync::spsc::Full(v)) = to_worker.push(msg) {
        msg = v;
        backoff.snooze();
    }
    (records, shard.stats().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use yasmin_core::config::MappingScheme;
    use yasmin_core::graph::TaskSetBuilder;
    use yasmin_core::priority::PriorityPolicy;
    use yasmin_core::task::TaskSpec;
    use yasmin_core::time::Duration;
    use yasmin_core::version::VersionSpec;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn sharded_config(workers: usize) -> Config {
        Config::builder()
            .workers(workers)
            .mapping(MappingScheme::Partitioned)
            .sharded_dispatch(true)
            .priority(PriorityPolicy::EarliestDeadlineFirst)
            .preemption(false)
            .build()
            .unwrap()
    }

    #[test]
    fn per_shard_periodic_tasks_fire_on_both_workers() {
        let mut b = TaskSetBuilder::new();
        let mut ids = Vec::new();
        for w in 0..2u16 {
            let t = b
                .task_decl(TaskSpec::periodic(format!("t{w}"), ms(5)).on_worker(WorkerId::new(w)))
                .unwrap();
            let v = b
                .version_decl(t, VersionSpec::new("v", Duration::from_micros(100)))
                .unwrap();
            ids.push((t, v));
        }
        let ts = Arc::new(b.build().unwrap());
        let counts: Vec<Arc<AtomicU32>> = (0..2).map(|_| Arc::new(AtomicU32::new(0))).collect();
        let mut builder = ShardedRuntimeBuilder::new(ts, sharded_config(2));
        for (w, (t, v)) in ids.iter().enumerate() {
            let c = Arc::clone(&counts[w]);
            builder = builder.body(*t, *v, move |_| {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        let rt = builder.build().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(60));
        rt.stop();
        let report = rt.cleanup();
        for (w, c) in counts.iter().enumerate() {
            let n = c.load(Ordering::SeqCst);
            assert!(n >= 4, "worker {w} only ran {n} jobs");
        }
        assert_eq!(
            report.records.len() as u32,
            counts.iter().map(|c| c.load(Ordering::SeqCst)).sum::<u32>()
        );
        assert_eq!(report.engine_stats.completed, report.records.len() as u64);
        // Every record names the worker its task was pinned to.
        for r in &report.records {
            assert_eq!(
                r.worker.index(),
                r.job.task.index(),
                "task w pinned to worker w"
            );
        }
    }

    #[test]
    fn activation_routes_to_the_owning_shard() {
        let mut b = TaskSetBuilder::new();
        let p = b
            .task_decl(TaskSpec::periodic("p", ms(5)).on_worker(WorkerId::new(0)))
            .unwrap();
        let vp = b
            .version_decl(p, VersionSpec::new("v", Duration::from_micros(10)))
            .unwrap();
        let a = b
            .task_decl(TaskSpec::aperiodic("a").on_worker(WorkerId::new(1)))
            .unwrap();
        let va = b
            .version_decl(a, VersionSpec::new("v", Duration::from_micros(10)))
            .unwrap();
        let ts = Arc::new(b.build().unwrap());
        let hits = Arc::new(AtomicU32::new(0));
        let h2 = Arc::clone(&hits);
        let on = Arc::new(AtomicU32::new(u32::MAX));
        let on2 = Arc::clone(&on);
        let rt = ShardedRuntimeBuilder::new(ts, sharded_config(2))
            .body(p, vp, |_| {})
            .body(a, va, move |ctx| {
                h2.fetch_add(1, Ordering::SeqCst);
                on2.store(u32::from(ctx.worker.raw()), Ordering::SeqCst);
            })
            .build()
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(10));
        rt.activate(a).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(25));
        rt.stop();
        let _ = rt.cleanup();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert_eq!(on.load(Ordering::SeqCst), 1, "ran on its assigned worker");
    }

    #[test]
    fn preemptive_or_unsharded_config_rejected() {
        let mut b = TaskSetBuilder::new();
        let t = b
            .task_decl(TaskSpec::periodic("t", ms(5)).on_worker(WorkerId::new(0)))
            .unwrap();
        let v = b
            .version_decl(t, VersionSpec::new("v", Duration::from_micros(10)))
            .unwrap();
        let ts = Arc::new(b.build().unwrap());
        let preemptive = Config::builder()
            .workers(1)
            .mapping(MappingScheme::Partitioned)
            .sharded_dispatch(true)
            .build()
            .unwrap();
        assert!(ShardedRuntimeBuilder::new(Arc::clone(&ts), preemptive)
            .body(t, v, |_| {})
            .build()
            .is_err());
        let unsharded = Config::builder()
            .workers(1)
            .mapping(MappingScheme::Partitioned)
            .preemption(false)
            .build()
            .unwrap();
        assert!(ShardedRuntimeBuilder::new(ts, unsharded)
            .body(t, v, |_| {})
            .build()
            .is_err());
    }

    #[test]
    fn cross_shard_dag_fires_on_the_owning_worker() {
        // src (periodic, worker 0) -> dst (graph node, worker 1): the
        // successor must run on worker 1, fed by CrossActivate commands
        // routed through the peer lanes.
        let mut b = TaskSetBuilder::new();
        let src = b
            .task_decl(TaskSpec::periodic("src", ms(5)).on_worker(WorkerId::new(0)))
            .unwrap();
        let vs = b
            .version_decl(src, VersionSpec::new("s", Duration::from_micros(50)))
            .unwrap();
        let dst = b
            .task_decl(TaskSpec::graph_node("dst").on_worker(WorkerId::new(1)))
            .unwrap();
        let vd = b
            .version_decl(dst, VersionSpec::new("d", Duration::from_micros(50)))
            .unwrap();
        let c = b.channel_decl("c", 1, 8);
        b.channel_connect(src, dst, c).unwrap();
        let ts = Arc::new(b.build().unwrap());
        let dst_hits = Arc::new(AtomicU32::new(0));
        let dh = Arc::clone(&dst_hits);
        let dst_worker = Arc::new(AtomicU32::new(u32::MAX));
        let dw = Arc::clone(&dst_worker);
        let rt = ShardedRuntimeBuilder::new(ts, sharded_config(2))
            .body(src, vs, |_| {})
            .body(dst, vd, move |ctx| {
                dh.fetch_add(1, Ordering::SeqCst);
                dw.store(u32::from(ctx.worker.raw()), Ordering::SeqCst);
            })
            .build()
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(60));
        rt.stop();
        let report = rt.cleanup();
        let hits = dst_hits.load(Ordering::SeqCst);
        assert!(hits >= 4, "successor fired only {hits} times");
        assert_eq!(
            dst_worker.load(Ordering::SeqCst),
            1,
            "successor runs on its assigned worker"
        );
        assert!(
            report.engine_stats.cross_activations >= u64::from(hits),
            "every firing crossed shards"
        );
        // Every dst record names worker 1.
        for r in report.records.iter().filter(|r| r.job.task == dst) {
            assert_eq!(r.worker, WorkerId::new(1));
        }
    }

    #[test]
    fn work_stealing_drains_an_imbalanced_shard() {
        // Worker 0 owns a burst of aperiodic jobs; worker 1 owns only a
        // light periodic tick source. With stealing enabled, worker 1
        // must pull jobs over and every activation must complete.
        const BURST: usize = 6;
        let mut b = TaskSetBuilder::new();
        let light = b
            .task_decl(TaskSpec::periodic("light", ms(5)).on_worker(WorkerId::new(1)))
            .unwrap();
        let vl = b
            .version_decl(light, VersionSpec::new("v", Duration::from_micros(10)))
            .unwrap();
        let mut heavy = Vec::new();
        for i in 0..BURST {
            let t = b
                .task_decl(TaskSpec::aperiodic(format!("h{i}")).on_worker(WorkerId::new(0)))
                .unwrap();
            let v = b.version_decl(t, VersionSpec::new("v", ms(4))).unwrap();
            heavy.push((t, v));
        }
        let ts = Arc::new(b.build().unwrap());
        let taskset = Arc::clone(&ts);
        let ran = Arc::new(AtomicU32::new(0));
        let mut builder = ShardedRuntimeBuilder::new(ts, sharded_config(2))
            .work_stealing(true)
            .body(light, vl, |_| {});
        for &(t, v) in &heavy {
            let r = Arc::clone(&ran);
            builder = builder.body(t, v, move |_| {
                r.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(3));
            });
        }
        let rt = builder.build().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(5));
        for &(t, _) in &heavy {
            rt.activate(t).unwrap();
        }
        // 6 jobs x 3ms on one worker would take ~18ms; give the pair
        // plenty of slack, then drain.
        std::thread::sleep(std::time::Duration::from_millis(60));
        rt.stop();
        let report = rt.cleanup();
        assert_eq!(
            ran.load(Ordering::SeqCst) as usize,
            BURST,
            "every activated job ran"
        );
        assert!(
            report.engine_stats.stolen >= 1,
            "the idle shard must steal from the loaded one (stats: {:?})",
            report.engine_stats
        );
        assert_eq!(report.engine_stats.stolen, report.engine_stats.donated);
        // Every migration rides a batch grant (a single steal is a
        // batch of one), and the batch-length histogram books exactly
        // one entry per exchange.
        assert!(report.engine_stats.stolen_batch >= 1);
        assert!(report.engine_stats.stolen_batch <= report.engine_stats.stolen);
        assert_eq!(
            report.engine_stats.steal_batch_len.iter().sum::<u64>(),
            report.engine_stats.stolen_batch
        );
        // Stolen jobs are recorded under the worker that actually ran
        // them: exactly `stolen` records name a worker other than the
        // task's assigned one (stealing may also move worker 1's light
        // jobs the other way while it serves stolen heavy work).
        let migrated = report
            .records
            .iter()
            .filter(|r| {
                taskset.tasks()[r.job.task.index()].spec().assigned_worker() != Some(r.worker)
            })
            .count();
        assert_eq!(migrated as u64, report.engine_stats.stolen);
        assert!(
            report.records.iter().any(
                |r| r.worker == WorkerId::new(1) && heavy.iter().any(|&(t, _)| t == r.job.task)
            ),
            "at least one heavy job ran on the idle worker"
        );
    }

    #[test]
    fn batch_steal_grants_multiple_jobs_in_one_exchange() {
        // A heavy burst parked on shard 0's queue while shard 1 idles:
        // the thief's probe sees a wide load gap, asks for k > 1, and a
        // single `StolenBatch` grant migrates several jobs at once. The
        // CI TSan step runs this whole exchange under ThreadSanitizer —
        // the hint scan, the k-job detach and the one-ack adoption are
        // raced against the victim's own dispatching, not just the
        // single-steal protocol of the test above.
        const BURST: usize = 12;
        let mut b = TaskSetBuilder::new();
        let light = b
            .task_decl(TaskSpec::periodic("light", ms(5)).on_worker(WorkerId::new(1)))
            .unwrap();
        let vl = b
            .version_decl(light, VersionSpec::new("v", Duration::from_micros(10)))
            .unwrap();
        let mut heavy = Vec::new();
        for i in 0..BURST {
            let t = b
                .task_decl(TaskSpec::aperiodic(format!("h{i}")).on_worker(WorkerId::new(0)))
                .unwrap();
            let v = b.version_decl(t, VersionSpec::new("v", ms(4))).unwrap();
            heavy.push((t, v));
        }
        let ts = Arc::new(b.build().unwrap());
        let ran = Arc::new(AtomicU32::new(0));
        let mut builder = ShardedRuntimeBuilder::new(ts, sharded_config(2))
            .work_stealing(true)
            .body(light, vl, |_| {});
        for &(t, v) in &heavy {
            let r = Arc::clone(&ran);
            builder = builder.body(t, v, move |_| {
                r.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(3));
            });
        }
        let rt = builder.build().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(5));
        for &(t, _) in &heavy {
            rt.activate(t).unwrap();
        }
        // 12 jobs x 3ms on one worker would take ~36ms; give the pair
        // plenty of slack, then drain.
        std::thread::sleep(std::time::Duration::from_millis(120));
        rt.stop();
        let report = rt.cleanup();
        assert_eq!(
            ran.load(Ordering::SeqCst) as usize,
            BURST,
            "every activated job ran"
        );
        assert!(
            report.engine_stats.stolen_batch >= 1,
            "the idle shard must steal (stats: {:?})",
            report.engine_stats
        );
        assert!(
            report.engine_stats.steal_batch_len[1..].iter().sum::<u64>() >= 1,
            "a 12-deep queue against an idle thief must grant more than \
             one job in some exchange (histogram {:?})",
            report.engine_stats.steal_batch_len
        );
        assert_eq!(report.engine_stats.stolen, report.engine_stats.donated);
        assert_eq!(
            report.engine_stats.steal_batch_len.iter().sum::<u64>(),
            report.engine_stats.stolen_batch
        );
    }

    #[test]
    fn cross_shard_high_lane_boosts_the_receiver() {
        // src (worker 0) streams typed messages to dst (worker 1) over
        // the channel bound to their DAG edge; every third message rides
        // the high lane. The notify hook runs on worker 0's thread, the
        // post crosses shard 0's message lane and a peer lane to shard 1
        // — the thread crossings this smoke test exists to put under
        // TSan. dst outlasts the src period, so a high post always finds
        // a live dst job to boost.
        use yasmin_core::priority::Priority;
        let mut b = TaskSetBuilder::new();
        let src = b
            .task_decl(TaskSpec::periodic("src", ms(5)).on_worker(WorkerId::new(0)))
            .unwrap();
        let vs = b
            .version_decl(src, VersionSpec::new("s", Duration::from_micros(50)))
            .unwrap();
        let dst = b
            .task_decl(TaskSpec::graph_node("dst").on_worker(WorkerId::new(1)))
            .unwrap();
        let vd = b.version_decl(dst, VersionSpec::new("d", ms(8))).unwrap();
        let c = b.channel_decl_prioritized("data", 64, 8, 16, Priority::HIGHEST);
        b.channel_connect(src, dst, c).unwrap();
        let ts = Arc::new(b.build().unwrap());

        let mut builder = ShardedRuntimeBuilder::new(ts, sharded_config(2));
        let (tx, rx) = builder.channel::<u64>(c).unwrap();
        let sent = Arc::new(AtomicU32::new(0));
        let got = Arc::new(AtomicU32::new(0));
        let s = Arc::clone(&sent);
        let g = Arc::clone(&got);
        let rt = builder
            .body(src, vs, move |_| {
                let n = s.fetch_add(1, Ordering::SeqCst);
                let _ = if n.is_multiple_of(3) {
                    tx.send_high(u64::from(n))
                } else {
                    tx.send(u64::from(n))
                };
            })
            .body(dst, vd, move |_| {
                while rx.recv().is_some() {
                    g.fetch_add(1, Ordering::SeqCst);
                }
                std::thread::sleep(std::time::Duration::from_millis(8));
            })
            .build()
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(80));
        rt.stop();
        let report = rt.cleanup();
        assert!(sent.load(Ordering::SeqCst) >= 8);
        assert!(got.load(Ordering::SeqCst) >= 1, "messages delivered");
        assert!(
            report.engine_stats.msg_boosts >= 1,
            "a high post while dst is pending must boost it (stats: {:?})",
            report.engine_stats
        );
    }

    /// A candidate tenant in its own id space: one periodic task on
    /// `worker` with the given period/WCET, plus its body map.
    fn candidate(
        period_ms: u64,
        wcet: Duration,
        worker: u16,
        counter: &Arc<AtomicU32>,
    ) -> (TaskSet, HashMap<(TaskId, VersionId), TaskBody>) {
        let mut b = TaskSetBuilder::new();
        let t = b
            .task_decl(TaskSpec::periodic("tenant", ms(period_ms)).on_worker(WorkerId::new(worker)))
            .unwrap();
        let v = b.version_decl(t, VersionSpec::new("v", wcet)).unwrap();
        let c = Arc::clone(counter);
        let mut bodies: HashMap<(TaskId, VersionId), TaskBody> = HashMap::new();
        bodies.insert(
            (t, v),
            Arc::new(move |_: &JobCtx| {
                c.fetch_add(1, Ordering::SeqCst);
            }),
        );
        (b.build().unwrap(), bodies)
    }

    #[test]
    fn tenant_admitted_into_running_schedule_executes_and_retires() {
        let mut b = TaskSetBuilder::new();
        let base = b
            .task_decl(TaskSpec::periodic("base", ms(5)).on_worker(WorkerId::new(0)))
            .unwrap();
        let vb = b
            .version_decl(base, VersionSpec::new("v", Duration::from_micros(50)))
            .unwrap();
        let ts = Arc::new(b.build().unwrap());
        let base_count = Arc::new(AtomicU32::new(0));
        let bc = Arc::clone(&base_count);
        let rt = ShardedRuntimeBuilder::new(ts, sharded_config(2))
            .body(base, vb, move |_| {
                bc.fetch_add(1, Ordering::SeqCst);
            })
            .build()
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));

        let tenant_count = Arc::new(AtomicU32::new(0));
        let (cand, bodies) = candidate(5, Duration::from_micros(50), 1, &tenant_count);
        let tenant = rt
            .admit(&cand, bodies, Some(TenantBudget::deferrable(ms(2), ms(5))))
            .unwrap();
        assert_eq!(tenant.raw(), 1);

        std::thread::sleep(std::time::Duration::from_millis(40));
        let before_retire = tenant_count.load(Ordering::SeqCst);
        assert!(before_retire >= 4, "tenant only ran {before_retire} jobs");
        rt.retire(tenant).unwrap();
        assert!(
            matches!(rt.retire(tenant), Err(Error::TenantRetired(_))),
            "double retire must be refused"
        );
        std::thread::sleep(std::time::Duration::from_millis(30));
        let after = tenant_count.load(Ordering::SeqCst);
        // At most the in-flight job finishes after the retire.
        assert!(
            after <= before_retire + 1,
            "tenant kept running after retirement ({before_retire} -> {after})"
        );
        rt.stop();
        let report = rt.cleanup();

        // The tenant's task occupies the merged suffix: base set has one
        // task, so the tenant's task is T1, pinned to worker 1.
        let merged_id = TaskId::new(1);
        let tenant_recs: Vec<_> = report
            .records
            .iter()
            .filter(|r| r.job.task == merged_id)
            .collect();
        assert_eq!(tenant_recs.len() as u32, after);
        for r in &tenant_recs {
            assert!(!r.missed(), "admitted tenant missed a deadline");
            assert_eq!(r.worker, WorkerId::new(1));
        }
        // The build-time tenant ran throughout.
        assert!(base_count.load(Ordering::SeqCst) >= 10);
    }

    #[test]
    fn overloaded_tenant_is_rejected_with_the_violated_bound() {
        use yasmin_sched::BoundViolation;
        let mut b = TaskSetBuilder::new();
        let base = b
            .task_decl(TaskSpec::periodic("base", ms(5)).on_worker(WorkerId::new(0)))
            .unwrap();
        let vb = b
            .version_decl(base, VersionSpec::new("v", Duration::from_micros(50)))
            .unwrap();
        let ts = Arc::new(b.build().unwrap());
        let rt = ShardedRuntimeBuilder::new(ts, sharded_config(2))
            .body(base, vb, |_| {})
            .build()
            .unwrap();

        // 12ms of work every 10ms on worker 1: density 1.2 > 1.
        let noop = Arc::new(AtomicU32::new(0));
        let (cand, bodies) = candidate(10, ms(12), 1, &noop);
        match rt.admit(&cand, bodies, None) {
            Err(AdmissionError::Rejected(BoundViolation::WorkerOverload { worker, density })) => {
                assert_eq!(worker, WorkerId::new(1));
                assert!(density > 1.0);
            }
            other => panic!("expected worker-overload rejection, got {other:?}"),
        }
        // A missing body is caught before any shard hears of the tenant.
        let (cand, _) = candidate(10, ms(1), 1, &noop);
        assert!(matches!(
            rt.admit(&cand, HashMap::new(), None),
            Err(AdmissionError::Invalid(_))
        ));
        rt.stop();
        let report = rt.cleanup();
        assert_eq!(noop.load(Ordering::SeqCst), 0, "rejected tenant never ran");
        assert!(report.records.iter().all(|r| r.job.task == base));
    }

    #[test]
    fn latency_is_sane_per_shard() {
        let mut b = TaskSetBuilder::new();
        let t = b
            .task_decl(TaskSpec::periodic("t", ms(10)).on_worker(WorkerId::new(0)))
            .unwrap();
        let v = b
            .version_decl(t, VersionSpec::new("v", Duration::from_micros(20)))
            .unwrap();
        let ts = Arc::new(b.build().unwrap());
        let rt = ShardedRuntimeBuilder::new(ts, sharded_config(1))
            .body(t, v, |_| {})
            .build()
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(80));
        rt.stop();
        let report = rt.cleanup();
        assert!(report.records.len() >= 3);
        for r in &report.records {
            assert!(
                r.start_latency() < ms(10),
                "latency {} exceeds the period",
                r.start_latency()
            );
            assert!(!r.missed(), "missed deadline in an idle host run");
        }
    }
}
