//! The sharded real-thread runtime: **one scheduler thread per core**.
//!
//! The classic [`crate::runtime::Runtime`] owns one scheduler thread for
//! the whole engine. Under partitioned mapping the engine state splits
//! into independent per-worker shards ([`EngineShard`]), so this runtime
//! spawns a *pair* of threads per core — the worker, and the scheduler
//! thread owning that worker's shard — and connects them with lock-free
//! queues only:
//!
//! * **downstream** (scheduler → worker): a wait-free SPSC ring carrying
//!   dispatches;
//! * **upstream** (everyone → scheduler): the MPSC command mailbox of
//!   `yasmin_sync::mailbox` with one lane for the worker's completion
//!   hand-backs and one lane for control commands
//!   (activate/stop/shutdown) — the `Activate`/`JobCompleted` command
//!   flow of the sharded design, with ticks generated locally by each
//!   scheduler thread at the shared gcd period.
//!
//! Scheduling decisions run through the same zero-allocation
//! [`ActionSink`] path as the single-owner runtime. Like that runtime,
//! shards schedule **non-preemptively at job boundaries**
//! (`preemption(false)`); preemptive sharded configurations are
//! exercised by the multi-threaded simulator driver (`yasmin_sim::par`).

use crate::runtime::{JobCtx, RtJobRecord, RuntimeReport, TaskBody};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use yasmin_core::config::{Config, WaitChoice};
use yasmin_core::error::{Error, Result};
use yasmin_core::graph::TaskSet;
use yasmin_core::ids::{JobId, TaskId, VersionId, WorkerId};
use yasmin_core::time::{Clock, Instant, MonotonicClock};
use yasmin_sched::{Action, ActionSink, EngineShard, EngineStats, Job};
use yasmin_sync::mailbox::{mailbox, MailboxFull, MailboxReceiver, MailboxSender};
use yasmin_sync::spsc;
use yasmin_sync::wait::Backoff;

/// Lane indices of each shard's command mailbox.
const LANE_WORKER: usize = 0;
const LANE_CONTROL: usize = 1;

enum WorkerMsg {
    Run {
        job: Job,
        version: VersionId,
        body: TaskBody,
    },
    Exit,
}

/// Commands flowing into a shard's scheduler thread.
enum ShardMsg {
    /// The shard's worker finished a job (the `JobCompleted` command).
    Done {
        job: Job,
        version: VersionId,
        started: Instant,
        completed: Instant,
    },
    /// Explicit activation of a task owned by the shard.
    Activate(TaskId),
    /// Stop releasing periodic jobs.
    Stop,
    /// Drain and exit.
    Shutdown,
}

/// Builder for the sharded runtime, mirroring
/// [`crate::runtime::RuntimeBuilder`].
pub struct ShardedRuntimeBuilder {
    taskset: Arc<TaskSet>,
    config: Config,
    bodies: HashMap<(TaskId, VersionId), TaskBody>,
    pin_offset: usize,
    lock_memory: bool,
}

impl ShardedRuntimeBuilder {
    /// Starts building a sharded runtime for `taskset` under `config`.
    ///
    /// `config` must use partitioned mapping with
    /// `Config::sharded_dispatch(true)` and `preemption(false)`.
    #[must_use]
    pub fn new(taskset: Arc<TaskSet>, config: Config) -> Self {
        ShardedRuntimeBuilder {
            taskset,
            config,
            bodies: HashMap::new(),
            pin_offset: 0,
            lock_memory: false,
        }
    }

    /// Registers the executable body of `(task, version)`.
    #[must_use]
    pub fn body(
        mut self,
        task: TaskId,
        version: VersionId,
        f: impl Fn(&JobCtx) + Send + Sync + 'static,
    ) -> Self {
        self.bodies.insert((task, version), Arc::new(f));
        self
    }

    /// Pins worker *w* — and its shard's scheduler thread — to core
    /// `offset + w`, best-effort.
    #[must_use]
    pub fn pin_cores_from(mut self, offset: usize) -> Self {
        self.pin_offset = offset;
        self
    }

    /// Calls `mlockall` at start (best-effort, §3.5).
    #[must_use]
    pub fn lock_memory(mut self) -> Self {
        self.lock_memory = true;
        self
    }

    /// Validates the sharding contract and spawns all threads; the
    /// schedule starts immediately.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidConfig`] when preemption is enabled, sharded
    ///   dispatch is not opted into, a version has no registered body,
    ///   or the task set violates the sharding contract
    ///   ([`yasmin_sched::validate_sharding`]);
    /// * engine construction errors (partition validation etc.).
    pub fn build(self) -> Result<ShardedRuntime> {
        if self.config.preemption() {
            return Err(Error::InvalidConfig(
                "the sharded thread runtime schedules non-preemptively at job \
                 boundaries; build the Config with .preemption(false)"
                    .into(),
            ));
        }
        for t in self.taskset.tasks() {
            for (vi, _) in t.versions().iter().enumerate() {
                let key = (t.id(), VersionId::new(vi as u16));
                if !self.bodies.contains_key(&key) {
                    return Err(Error::InvalidConfig(format!(
                        "no body registered for task {} version v{vi}",
                        t.id()
                    )));
                }
            }
        }
        let shards = EngineShard::build_all(&self.taskset, &self.config)?;
        if self.lock_memory {
            // Best-effort; containers commonly deny it.
            let _ = crate::os::lock_all_memory();
        }
        ShardedRuntime::spawn(self, shards)
    }
}

/// The running sharded middleware: per-core scheduler threads + workers.
pub struct ShardedRuntime {
    taskset: Arc<TaskSet>,
    /// One control sender per shard (lane [`LANE_CONTROL`]); behind a
    /// mutex because mailbox lanes are single-producer while this handle
    /// is `&self`-shared.
    control: Mutex<Vec<MailboxSender<ShardMsg>>>,
    schedulers: Vec<std::thread::JoinHandle<(Vec<RtJobRecord>, EngineStats)>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ShardedRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedRuntime")
            .field("shards", &self.schedulers.len())
            .finish_non_exhaustive()
    }
}

/// Sends `msg` into a mailbox lane, backing off while it is full.
fn send_with_backoff(tx: &mut MailboxSender<ShardMsg>, mut msg: ShardMsg) {
    let mut backoff = Backoff::new();
    loop {
        match tx.send(msg) {
            Ok(()) => return,
            Err(MailboxFull(v)) => {
                msg = v;
                backoff.snooze();
            }
        }
    }
}

impl ShardedRuntime {
    fn spawn(builder: ShardedRuntimeBuilder, shards: Vec<EngineShard>) -> Result<Self> {
        let clock = Arc::new(MonotonicClock::new());
        let cap = builder.config.max_pending_jobs();
        let waiting = builder.config.waiting();
        let mut control = Vec::with_capacity(shards.len());
        let mut schedulers = Vec::with_capacity(shards.len());
        let mut workers = Vec::with_capacity(shards.len());

        for shard in shards {
            let w = shard.worker();
            let core = builder.pin_offset + w.index();
            let (to_worker, from_sched) = spsc::channel::<WorkerMsg>(cap);
            let (mut lanes, mailbox_rx) = mailbox::<ShardMsg>(2, cap.max(64));
            let control_tx = lanes.remove(LANE_CONTROL);
            let worker_tx = lanes.remove(LANE_WORKER);
            control.push(control_tx);

            let worker_clock = Arc::clone(&clock);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("yasmin-worker-{w}"))
                    .spawn(move || {
                        let _ = crate::os::pin_current_thread(core);
                        shard_worker_main(from_sched, worker_tx, &worker_clock, w, waiting);
                    })
                    .map_err(|e| Error::Os(format!("spawning worker {w}: {e}")))?,
            );

            let bodies = builder.bodies.clone();
            let sched_clock = Arc::clone(&clock);
            schedulers.push(
                std::thread::Builder::new()
                    .name(format!("yasmin-shard-sched-{w}"))
                    .spawn(move || {
                        let _ = crate::os::pin_current_thread(core);
                        shard_scheduler_main(
                            shard,
                            &bodies,
                            to_worker,
                            mailbox_rx,
                            &sched_clock,
                            waiting,
                        )
                    })
                    .map_err(|e| Error::Os(format!("spawning shard scheduler {w}: {e}")))?,
            );
        }

        Ok(ShardedRuntime {
            taskset: builder.taskset,
            control: Mutex::new(control),
            schedulers,
            workers,
        })
    }

    /// Activates an aperiodic or sporadic task on its owning shard (the
    /// paper's `yas_task_activate`).
    ///
    /// # Errors
    ///
    /// [`Error::UnknownTask`] / [`Error::MissingPartition`] when the
    /// task does not exist or has no worker assignment.
    pub fn activate(&self, task: TaskId) -> Result<()> {
        let t = self.taskset.task(task)?;
        let w = t
            .spec()
            .assigned_worker()
            .ok_or(Error::MissingPartition(task))?;
        let mut control = self.control.lock().expect("control mutex poisoned");
        send_with_backoff(&mut control[w.index()], ShardMsg::Activate(task));
        Ok(())
    }

    /// Stops releasing new periodic jobs on every shard; in-flight jobs
    /// drain (the paper's `yas_stop`).
    pub fn stop(&self) {
        let mut control = self.control.lock().expect("control mutex poisoned");
        for tx in control.iter_mut() {
            send_with_backoff(tx, ShardMsg::Stop);
        }
    }

    /// Drains every shard, joins all threads and returns the merged run
    /// report (the paper's `yas_cleanup`). Records are ordered by
    /// completion time across shards.
    ///
    /// # Panics
    ///
    /// Panics if a runtime thread panicked.
    #[must_use]
    pub fn cleanup(mut self) -> RuntimeReport {
        {
            let mut control = self.control.lock().expect("control mutex poisoned");
            for tx in control.iter_mut() {
                send_with_backoff(tx, ShardMsg::Shutdown);
            }
        }
        let mut records = Vec::new();
        let mut engine_stats = EngineStats::default();
        for s in self.schedulers.drain(..) {
            let (recs, stats) = s.join().expect("shard scheduler thread panicked");
            records.extend(recs);
            engine_stats.merge(&stats);
        }
        for w in self.workers.drain(..) {
            w.join().expect("worker thread panicked");
        }
        records.sort_by_key(|r| (r.completed, r.job.task, r.job.seq));
        RuntimeReport {
            records,
            engine_stats,
        }
    }
}

fn shard_worker_main(
    mut rx: spsc::Consumer<WorkerMsg>,
    mut done_tx: MailboxSender<ShardMsg>,
    clock: &Arc<MonotonicClock>,
    me: WorkerId,
    waiting: WaitChoice,
) {
    let mut backoff = Backoff::new();
    let mut idle_polls = 0u32;
    loop {
        match rx.pop() {
            Some(WorkerMsg::Exit) => break,
            Some(WorkerMsg::Run { job, version, body }) => {
                backoff.reset();
                idle_polls = 0;
                let started = clock.now();
                let ctx = JobCtx {
                    job,
                    version,
                    worker: me,
                };
                body(&ctx);
                let completed = clock.now();
                send_with_backoff(
                    &mut done_tx,
                    ShardMsg::Done {
                        job,
                        version,
                        started,
                        completed,
                    },
                );
            }
            None => {
                idle_polls += 1;
                // Under the sleep strategy an idle worker naps in short
                // slices instead of burning its core.
                if waiting == WaitChoice::Sleep && idle_polls > 64 {
                    std::thread::sleep(std::time::Duration::from_micros(100));
                } else {
                    backoff.snooze();
                }
            }
        }
    }
}

fn shard_scheduler_main(
    mut shard: EngineShard,
    bodies: &HashMap<(TaskId, VersionId), TaskBody>,
    mut to_worker: spsc::Producer<WorkerMsg>,
    mut rx: MailboxReceiver<ShardMsg>,
    clock: &Arc<MonotonicClock>,
    waiting: WaitChoice,
) -> (Vec<RtJobRecord>, EngineStats) {
    let worker = shard.worker();
    let tick = shard.tick_period();
    let mut records: Vec<RtJobRecord> = Vec::new();
    let mut shutting_down = false;

    // One reusable sink: the steady-state loop allocates nothing for
    // actions. Dispatches go straight into the worker's SPSC ring.
    let mut sink = ActionSink::new();
    // Completions found pending in one mailbox drain, retired through
    // the engine's batch API so the whole burst pays a single dispatch
    // round (with today's one-worker shards the burst is at most one;
    // the coalescing is load-bearing once shards serve stolen work).
    let mut done_batch: Vec<(WorkerId, JobId)> = Vec::with_capacity(8);
    let mut last_done = Instant::ZERO;
    let dispatch = |sink: &ActionSink, to_worker: &mut spsc::Producer<WorkerMsg>| {
        for &a in sink.as_slice() {
            if let Action::Dispatch { job, version, .. } = a {
                let body = Arc::clone(&bodies[&(job.task, version)]);
                let mut msg = WorkerMsg::Run { job, version, body };
                let mut backoff = Backoff::new();
                // The ring is sized for max_pending_jobs, so a full ring
                // only means the worker is momentarily behind.
                while let Err(yasmin_sync::spsc::Full(v)) = to_worker.push(msg) {
                    msg = v;
                    backoff.snooze();
                }
            }
            // Boost actions are priority bookkeeping only; preemption is
            // disabled, so Preempt cannot occur.
        }
    };

    shard
        .start_into(clock.now(), &mut sink)
        .expect("fresh shard starts");
    dispatch(&sink, &mut to_worker);
    let mut next_tick = clock.now() + tick;

    loop {
        // Drain the mailbox (completions + control), zero-alloc path.
        // Pending completions coalesce; a control command first flushes
        // them, so command effects stay ordered as received.
        let mut drained_any = false;
        debug_assert!(done_batch.is_empty());
        loop {
            let msg = rx.try_recv();
            if msg.is_some() {
                drained_any = true;
            }
            if !done_batch.is_empty() && !matches!(msg, Some(ShardMsg::Done { .. })) {
                sink.clear();
                shard
                    .on_jobs_completed_into(&done_batch, last_done, &mut sink)
                    .expect("completion protocol upheld");
                done_batch.clear();
                dispatch(&sink, &mut to_worker);
            }
            let Some(msg) = msg else { break };
            match msg {
                ShardMsg::Done {
                    job,
                    version,
                    started,
                    completed,
                } => {
                    done_batch.push((worker, job.id));
                    // Max, not overwrite: once shards serve stolen work
                    // the mailbox merges lanes, and a batch's dispatch
                    // round must not run at a timestamp earlier than a
                    // completion it retires.
                    last_done = last_done.max(completed);
                    records.push(RtJobRecord {
                        job,
                        version,
                        worker,
                        started,
                        completed,
                    });
                }
                ShardMsg::Activate(task) => {
                    sink.clear();
                    if shard.activate_into(task, clock.now(), &mut sink).is_ok() {
                        dispatch(&sink, &mut to_worker);
                    }
                }
                ShardMsg::Stop => shard.stop(),
                ShardMsg::Shutdown => shutting_down = true,
            }
        }
        if shutting_down && shard.is_idle() {
            break;
        }

        // Tick edge, generated locally by this shard's owner.
        let now = clock.now();
        if now >= next_tick {
            sink.clear();
            shard.on_tick_into(now, &mut sink);
            dispatch(&sink, &mut to_worker);
            while next_tick <= now {
                next_tick += tick;
            }
            continue;
        }
        if !drained_any {
            // Idle until the next tick or the next mailbox command; the
            // sleep strategy naps in short slices so completions are
            // still picked up promptly.
            match waiting {
                WaitChoice::Sleep => {
                    let remaining: std::time::Duration = (next_tick - now).into();
                    std::thread::sleep(remaining.min(std::time::Duration::from_micros(200)));
                }
                WaitChoice::Spin => std::hint::spin_loop(),
            }
        }
    }

    // Release the worker.
    let mut msg = WorkerMsg::Exit;
    let mut backoff = Backoff::new();
    while let Err(yasmin_sync::spsc::Full(v)) = to_worker.push(msg) {
        msg = v;
        backoff.snooze();
    }
    (records, shard.stats().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use yasmin_core::config::MappingScheme;
    use yasmin_core::graph::TaskSetBuilder;
    use yasmin_core::priority::PriorityPolicy;
    use yasmin_core::task::TaskSpec;
    use yasmin_core::time::Duration;
    use yasmin_core::version::VersionSpec;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn sharded_config(workers: usize) -> Config {
        Config::builder()
            .workers(workers)
            .mapping(MappingScheme::Partitioned)
            .sharded_dispatch(true)
            .priority(PriorityPolicy::EarliestDeadlineFirst)
            .preemption(false)
            .build()
            .unwrap()
    }

    #[test]
    fn per_shard_periodic_tasks_fire_on_both_workers() {
        let mut b = TaskSetBuilder::new();
        let mut ids = Vec::new();
        for w in 0..2u16 {
            let t = b
                .task_decl(TaskSpec::periodic(format!("t{w}"), ms(5)).on_worker(WorkerId::new(w)))
                .unwrap();
            let v = b
                .version_decl(t, VersionSpec::new("v", Duration::from_micros(100)))
                .unwrap();
            ids.push((t, v));
        }
        let ts = Arc::new(b.build().unwrap());
        let counts: Vec<Arc<AtomicU32>> = (0..2).map(|_| Arc::new(AtomicU32::new(0))).collect();
        let mut builder = ShardedRuntimeBuilder::new(ts, sharded_config(2));
        for (w, (t, v)) in ids.iter().enumerate() {
            let c = Arc::clone(&counts[w]);
            builder = builder.body(*t, *v, move |_| {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        let rt = builder.build().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(60));
        rt.stop();
        let report = rt.cleanup();
        for (w, c) in counts.iter().enumerate() {
            let n = c.load(Ordering::SeqCst);
            assert!(n >= 4, "worker {w} only ran {n} jobs");
        }
        assert_eq!(
            report.records.len() as u32,
            counts.iter().map(|c| c.load(Ordering::SeqCst)).sum::<u32>()
        );
        assert_eq!(report.engine_stats.completed, report.records.len() as u64);
        // Every record names the worker its task was pinned to.
        for r in &report.records {
            assert_eq!(
                r.worker.index(),
                r.job.task.index(),
                "task w pinned to worker w"
            );
        }
    }

    #[test]
    fn activation_routes_to_the_owning_shard() {
        let mut b = TaskSetBuilder::new();
        let p = b
            .task_decl(TaskSpec::periodic("p", ms(5)).on_worker(WorkerId::new(0)))
            .unwrap();
        let vp = b
            .version_decl(p, VersionSpec::new("v", Duration::from_micros(10)))
            .unwrap();
        let a = b
            .task_decl(TaskSpec::aperiodic("a").on_worker(WorkerId::new(1)))
            .unwrap();
        let va = b
            .version_decl(a, VersionSpec::new("v", Duration::from_micros(10)))
            .unwrap();
        let ts = Arc::new(b.build().unwrap());
        let hits = Arc::new(AtomicU32::new(0));
        let h2 = Arc::clone(&hits);
        let on = Arc::new(AtomicU32::new(u32::MAX));
        let on2 = Arc::clone(&on);
        let rt = ShardedRuntimeBuilder::new(ts, sharded_config(2))
            .body(p, vp, |_| {})
            .body(a, va, move |ctx| {
                h2.fetch_add(1, Ordering::SeqCst);
                on2.store(u32::from(ctx.worker.raw()), Ordering::SeqCst);
            })
            .build()
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(10));
        rt.activate(a).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(25));
        rt.stop();
        let _ = rt.cleanup();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert_eq!(on.load(Ordering::SeqCst), 1, "ran on its assigned worker");
    }

    #[test]
    fn preemptive_or_unsharded_config_rejected() {
        let mut b = TaskSetBuilder::new();
        let t = b
            .task_decl(TaskSpec::periodic("t", ms(5)).on_worker(WorkerId::new(0)))
            .unwrap();
        let v = b
            .version_decl(t, VersionSpec::new("v", Duration::from_micros(10)))
            .unwrap();
        let ts = Arc::new(b.build().unwrap());
        let preemptive = Config::builder()
            .workers(1)
            .mapping(MappingScheme::Partitioned)
            .sharded_dispatch(true)
            .build()
            .unwrap();
        assert!(ShardedRuntimeBuilder::new(Arc::clone(&ts), preemptive)
            .body(t, v, |_| {})
            .build()
            .is_err());
        let unsharded = Config::builder()
            .workers(1)
            .mapping(MappingScheme::Partitioned)
            .preemption(false)
            .build()
            .unwrap();
        assert!(ShardedRuntimeBuilder::new(ts, unsharded)
            .body(t, v, |_| {})
            .build()
            .is_err());
    }

    #[test]
    fn latency_is_sane_per_shard() {
        let mut b = TaskSetBuilder::new();
        let t = b
            .task_decl(TaskSpec::periodic("t", ms(10)).on_worker(WorkerId::new(0)))
            .unwrap();
        let v = b
            .version_decl(t, VersionSpec::new("v", Duration::from_micros(20)))
            .unwrap();
        let ts = Arc::new(b.build().unwrap());
        let rt = ShardedRuntimeBuilder::new(ts, sharded_config(1))
            .body(t, v, |_| {})
            .build()
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(80));
        rt.stop();
        let report = rt.cleanup();
        assert!(report.records.len() >= 3);
        for r in &report.records {
            assert!(
                r.start_latency() < ms(10),
                "latency {} exceeds the period",
                r.start_latency()
            );
            assert!(!r.missed(), "missed deadline in an idle host run");
        }
    }
}
