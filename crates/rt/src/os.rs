//! OS interactions of the runtime (§3.3/§3.5): core pinning, memory
//! locking, real-time priorities.
//!
//! These are exactly the calls the paper relies on —
//! `pthread_setaffinity_np`, `mlockall`, `SCHED_FIFO` — none of which
//! `std` exposes, hence the `libc` dependency behind the default `os-rt`
//! feature. Every call degrades gracefully: unprivileged containers
//! return an [`Error::Os`] which callers may log and ignore, matching the
//! middleware's best-effort stance on COTS systems.

use yasmin_core::error::{Error, Result};

/// Pins the calling thread to `core` (zero-based).
///
/// # Errors
///
/// [`Error::Os`] when the kernel rejects the affinity call (out-of-range
/// core, restricted cpuset) or the feature is disabled.
#[cfg(all(feature = "os-rt", target_os = "linux"))]
pub fn pin_current_thread(core: usize) -> Result<()> {
    if core >= libc::CPU_SETSIZE as usize {
        return Err(Error::Os(format!(
            "core {core} exceeds CPU_SETSIZE ({})",
            libc::CPU_SETSIZE
        )));
    }
    // SAFETY: CPU_SET/CPU_ZERO manipulate a plain stack value; the index
    // is bounds-checked above; pthread_setaffinity_np reads it for the
    // calling thread only.
    unsafe {
        let mut set: libc::cpu_set_t = std::mem::zeroed();
        libc::CPU_ZERO(&mut set);
        libc::CPU_SET(core, &mut set);
        let rc = libc::pthread_setaffinity_np(
            libc::pthread_self(),
            std::mem::size_of::<libc::cpu_set_t>(),
            &set,
        );
        if rc == 0 {
            Ok(())
        } else {
            Err(Error::Os(format!(
                "pthread_setaffinity_np({core}) failed: {rc}"
            )))
        }
    }
}

/// Pins the calling thread to `core` — no-op stub without `os-rt` on Linux.
///
/// # Errors
///
/// Always [`Error::Os`] (feature disabled or non-Linux host).
#[cfg(not(all(feature = "os-rt", target_os = "linux")))]
pub fn pin_current_thread(core: usize) -> Result<()> {
    let _ = core;
    Err(Error::Os("os-rt disabled or non-Linux host".into()))
}

/// Locks current and future pages in memory (`mlockall(MCL_CURRENT |
/// MCL_FUTURE)`) — the paper's protection against page faults (§3.5).
///
/// # Errors
///
/// [`Error::Os`] when the kernel refuses (usually `RLIMIT_MEMLOCK`).
#[cfg(all(feature = "os-rt", target_os = "linux"))]
pub fn lock_all_memory() -> Result<()> {
    // SAFETY: mlockall takes flags only and affects the whole process.
    let rc = unsafe { libc::mlockall(libc::MCL_CURRENT | libc::MCL_FUTURE) };
    if rc == 0 {
        Ok(())
    } else {
        Err(Error::Os("mlockall failed (RLIMIT_MEMLOCK?)".into()))
    }
}

/// Locks memory — no-op stub without `os-rt` on Linux.
///
/// # Errors
///
/// Always [`Error::Os`] (feature disabled or non-Linux host).
#[cfg(not(all(feature = "os-rt", target_os = "linux")))]
pub fn lock_all_memory() -> Result<()> {
    Err(Error::Os("os-rt disabled or non-Linux host".into()))
}

/// Gives the calling thread a `SCHED_FIFO` priority (1–99; higher wins).
///
/// # Errors
///
/// [`Error::Os`] when unprivileged (no `CAP_SYS_NICE`).
#[cfg(all(feature = "os-rt", target_os = "linux"))]
pub fn set_fifo_priority(priority: i32) -> Result<()> {
    // SAFETY: sched_param is a plain struct passed by pointer.
    unsafe {
        let param = libc::sched_param {
            sched_priority: priority.clamp(1, 99),
        };
        let rc = libc::pthread_setschedparam(libc::pthread_self(), libc::SCHED_FIFO, &param);
        if rc == 0 {
            Ok(())
        } else {
            Err(Error::Os(format!("SCHED_FIFO({priority}) refused: {rc}")))
        }
    }
}

/// Sets a FIFO priority — no-op stub without `os-rt` on Linux.
///
/// # Errors
///
/// Always [`Error::Os`] (feature disabled or non-Linux host).
#[cfg(not(all(feature = "os-rt", target_os = "linux")))]
pub fn set_fifo_priority(priority: i32) -> Result<()> {
    let _ = priority;
    Err(Error::Os("os-rt disabled or non-Linux host".into()))
}

/// Number of cores visible to this process.
#[must_use]
pub fn available_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Applies the full shielded-worker setup best-effort: pin to `core`,
/// set FIFO priority. Returns the list of failures (empty = full RT
/// setup achieved).
#[must_use]
pub fn setup_rt_thread(core: usize, priority: i32) -> Vec<Error> {
    let mut failures = Vec::new();
    if let Err(e) = pin_current_thread(core) {
        failures.push(e);
    }
    if let Err(e) = set_fifo_priority(priority) {
        failures.push(e);
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn available_cores_positive() {
        assert!(available_cores() >= 1);
    }

    #[test]
    fn pin_to_core_zero_usually_works() {
        // Core 0 exists everywhere; in restricted cpusets this may fail,
        // which is also an accepted outcome.
        match pin_current_thread(0) {
            Ok(()) => {}
            Err(Error::Os(_)) => {}
            Err(other) => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn pin_to_absurd_core_fails() {
        assert!(pin_current_thread(100_000).is_err());
    }

    #[test]
    fn best_effort_setup_reports() {
        // Either full success or a list of Os errors; never panics.
        let failures = setup_rt_thread(0, 50);
        for f in failures {
            assert!(matches!(f, Error::Os(_)));
        }
    }
}
